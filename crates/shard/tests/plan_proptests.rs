//! Property tests for the shard plan's boundary classification
//! (ISSUE 6, satellite 2): across random scenarios and shard counts,
//!
//! * every server site is interior to exactly one shard tile (half-open
//!   ownership), and that tile is the one `owner()` records;
//! * every cross-shard server pair closer than the interference range
//!   appears in *both* shards' halos — no interferer can hide from the
//!   halo exchange.
//!
//! ISSUE 7 extends the suite to the *exact* cut lines: positions placed
//! bitwise on interior tile boundaries must have exactly one owner under
//! the half-open convention, ownership must be stable, and every such
//! position must be flagged `near_foreign_boundary` (distance zero to the
//! tile across the cut).

use idde_core::Problem;
use idde_eua::{SampleConfig, SyntheticEua};
use idde_model::ServerId;
use idde_shard::ShardPlan;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn scenario(seed: u64, servers: usize) -> idde_model::Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let population = SyntheticEua::default().generate(&mut rng);
    let scenario = SampleConfig::paper(servers, 30, 3).sample(&population, &mut rng);
    // Problem::standard validates the scenario the same way the serve
    // path does; the plan only needs the scenario back.
    Problem::standard(scenario, &mut rng).scenario
}

fn arb_case() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..5000, 8usize..32, 2usize..=6)
        .prop_map(|(seed, servers, shards)| (seed, servers, shards.min(servers)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_server_is_interior_to_exactly_one_shard((seed, servers, shards) in arb_case()) {
        let s = scenario(seed, servers);
        let plan = ShardPlan::build(&s, shards).unwrap();
        for (i, server) in s.servers.iter().enumerate() {
            let id = ServerId(i as u32);
            let containing: Vec<usize> = (0..plan.num_shards())
                .filter(|&k| plan.owner_of_position(server.position) == k)
                .collect();
            prop_assert_eq!(containing.len(), 1, "server {} owned by {:?}", i, &containing);
            prop_assert_eq!(containing[0], plan.owner_of_server(id));
            // Half-open ownership also means the site sits inside (or on the
            // closed outer boundary of) its tile's rectangle.
            let rect = plan.rect(containing[0]);
            prop_assert!(rect.contains(server.position));
        }
        // Every shard got at least one server.
        for (k, count) in plan.server_counts().iter().enumerate() {
            prop_assert!(*count >= 1, "shard {} owns no servers", k);
        }
    }

    #[test]
    fn close_cross_shard_pairs_appear_in_both_halos((seed, servers, shards) in arb_case()) {
        let s = scenario(seed, servers);
        let plan = ShardPlan::build(&s, shards).unwrap();
        let range = plan.interference_range();
        for i in 0..s.num_servers() {
            for j in (i + 1)..s.num_servers() {
                let (a, b) = (ServerId(i as u32), ServerId(j as u32));
                let (ka, kb) = (plan.owner_of_server(a), plan.owner_of_server(b));
                if ka == kb {
                    continue;
                }
                let dist = s.servers[i].position.distance(s.servers[j].position);
                if dist <= range {
                    prop_assert!(
                        plan.halo(kb).binary_search(&a).is_ok(),
                        "server {} ({}m from {}) missing from shard {}'s halo",
                        i, dist, j, kb
                    );
                    prop_assert!(
                        plan.halo(ka).binary_search(&b).is_ok(),
                        "server {} ({}m from {}) missing from shard {}'s halo",
                        j, dist, i, ka
                    );
                }
            }
        }
        // Halos only ever contain foreign servers.
        for k in 0..plan.num_shards() {
            for &id in plan.halo(k) {
                prop_assert!(plan.owner_of_server(id) != k);
            }
        }
    }

    /// ISSUE 7 satellite: positions placed *bitwise* on the tile cut lines.
    /// The half-open convention must give every such point exactly one
    /// owner (no double-ownership on the lower/left side, no orphan on the
    /// upper/right), the answer must be stable under repetition, and a
    /// point sitting on an interior cut is at distance zero from the tile
    /// across it — so `near_foreign_boundary` must fire for it.
    #[test]
    fn exact_cut_line_positions_have_unique_stable_owners((seed, servers, shards) in arb_case()) {
        let s = scenario(seed, servers);
        let plan = ShardPlan::build(&s, shards).unwrap();
        let outer = plan.outer();

        // Replicates the ownership predicate so uniqueness (not just
        // first-match) can be counted across all tiles.
        let claimants = |p: idde_model::Point| -> Vec<usize> {
            (0..plan.num_shards())
                .filter(|&k| {
                    let r = plan.rect(k);
                    let x_ok = p.x >= r.min.x && (p.x < r.max.x || r.max.x >= outer.max.x);
                    let y_ok = p.y >= r.min.y && (p.y < r.max.y || r.max.y >= outer.max.y);
                    x_ok && y_ok
                })
                .collect()
        };

        let mut probes: Vec<(idde_model::Point, bool)> = Vec::new(); // (point, on interior cut)
        for k in 0..plan.num_shards() {
            let r = plan.rect(k);
            let xs = [(r.min.x, r.min.x > outer.min.x), (r.max.x, r.max.x < outer.max.x)];
            let ys = [(r.min.y, r.min.y > outer.min.y), (r.max.y, r.max.y < outer.max.y)];
            // Corners of the tile: on a cut iff either coordinate is an
            // interior boundary line.
            for &(x, xi) in &xs {
                for &(y, yi) in &ys {
                    probes.push((idde_model::Point::new(x, y), xi || yi));
                }
            }
            // Edge midpoints: exactly one coordinate pinned to the line.
            let (cx, cy) = (r.center().x, r.center().y);
            for &(x, xi) in &xs {
                probes.push((idde_model::Point::new(x, cy), xi));
            }
            for &(y, yi) in &ys {
                probes.push((idde_model::Point::new(cx, y), yi));
            }
        }

        for (p, on_interior_cut) in probes {
            let owners = claimants(p);
            prop_assert_eq!(
                owners.len(),
                1,
                "cut-line point ({}, {}) claimed by shards {:?}",
                p.x,
                p.y,
                &owners
            );
            let home = plan.owner_of_position(p);
            prop_assert_eq!(home, owners[0]);
            // Stable: asking again (same bits in, same owner out).
            prop_assert_eq!(plan.owner_of_position(p), home);
            // The owning tile contains the point in its closure.
            prop_assert!(plan.rect(home).contains(p));
            if on_interior_cut && plan.num_shards() > 1 {
                // Tiles partition the outer rect, so a point on an interior
                // cut touches the closure of some foreign tile at distance
                // zero — the boundary classifier must catch it.
                prop_assert!(
                    plan.near_foreign_boundary(p, home),
                    "point ({}, {}) on an interior cut not flagged boundary-near",
                    p.x,
                    p.y
                );
                let zero_dist_foreign = (0..plan.num_shards())
                    .any(|k| k != home && plan.rect(k).distance_to(p) == 0.0);
                prop_assert!(zero_dist_foreign);
            }
        }
    }
}
