//! Property tests for the shard plan's boundary classification
//! (ISSUE 6, satellite 2): across random scenarios and shard counts,
//!
//! * every server site is interior to exactly one shard tile (half-open
//!   ownership), and that tile is the one `owner()` records;
//! * every cross-shard server pair closer than the interference range
//!   appears in *both* shards' halos — no interferer can hide from the
//!   halo exchange.

use idde_core::Problem;
use idde_eua::{SampleConfig, SyntheticEua};
use idde_model::ServerId;
use idde_shard::ShardPlan;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn scenario(seed: u64, servers: usize) -> idde_model::Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let population = SyntheticEua::default().generate(&mut rng);
    let scenario = SampleConfig::paper(servers, 30, 3).sample(&population, &mut rng);
    // Problem::standard validates the scenario the same way the serve
    // path does; the plan only needs the scenario back.
    Problem::standard(scenario, &mut rng).scenario
}

fn arb_case() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..5000, 8usize..32, 2usize..=6)
        .prop_map(|(seed, servers, shards)| (seed, servers, shards.min(servers)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_server_is_interior_to_exactly_one_shard((seed, servers, shards) in arb_case()) {
        let s = scenario(seed, servers);
        let plan = ShardPlan::build(&s, shards).unwrap();
        for (i, server) in s.servers.iter().enumerate() {
            let id = ServerId(i as u32);
            let containing: Vec<usize> = (0..plan.num_shards())
                .filter(|&k| plan.owner_of_position(server.position) == k)
                .collect();
            prop_assert_eq!(containing.len(), 1, "server {} owned by {:?}", i, &containing);
            prop_assert_eq!(containing[0], plan.owner_of_server(id));
            // Half-open ownership also means the site sits inside (or on the
            // closed outer boundary of) its tile's rectangle.
            let rect = plan.rect(containing[0]);
            prop_assert!(rect.contains(server.position));
        }
        // Every shard got at least one server.
        for (k, count) in plan.server_counts().iter().enumerate() {
            prop_assert!(*count >= 1, "shard {} owns no servers", k);
        }
    }

    #[test]
    fn close_cross_shard_pairs_appear_in_both_halos((seed, servers, shards) in arb_case()) {
        let s = scenario(seed, servers);
        let plan = ShardPlan::build(&s, shards).unwrap();
        let range = plan.interference_range();
        for i in 0..s.num_servers() {
            for j in (i + 1)..s.num_servers() {
                let (a, b) = (ServerId(i as u32), ServerId(j as u32));
                let (ka, kb) = (plan.owner_of_server(a), plan.owner_of_server(b));
                if ka == kb {
                    continue;
                }
                let dist = s.servers[i].position.distance(s.servers[j].position);
                if dist <= range {
                    prop_assert!(
                        plan.halo(kb).binary_search(&a).is_ok(),
                        "server {} ({}m from {}) missing from shard {}'s halo",
                        i, dist, j, kb
                    );
                    prop_assert!(
                        plan.halo(ka).binary_search(&b).is_ok(),
                        "server {} ({}m from {}) missing from shard {}'s halo",
                        j, dist, i, ka
                    );
                }
            }
        }
        // Halos only ever contain foreign servers.
        for k in 0..plan.num_shards() {
            for &id in plan.halo(k) {
                prop_assert!(plan.owner_of_server(id) != k);
            }
        }
    }
}
