//! Cross-experiment aggregate analysis — the §4.5.1 style summary
//! statistics the paper quotes ("the average advantage of IDDE-G in terms
//! of data rate is 9.20% over IDDE-IP, 53.27% over SAA, …").

use crate::runner::SetResult;

/// The mean advantage of one approach over another, aggregated over every
/// point of every supplied set, exactly like the paper's §4.5.1 averages.
#[derive(Clone, Debug, PartialEq)]
pub struct Advantage {
    /// The reference approach (the paper's IDDE-G).
    pub subject: String,
    /// The compared approach.
    pub against: String,
    /// Mean relative rate advantage: `(R_subject − R_against) / R_against`,
    /// averaged over points (positive = subject is better).
    pub rate_advantage: f64,
    /// Mean relative latency advantage:
    /// `(L_against − L_subject) / L_against` (positive = subject is
    /// better, i.e. lower latency).
    pub latency_advantage: f64,
}

/// Computes the advantages of `subject` over every other approach across
/// the supplied set results.
pub fn advantages(results: &[SetResult], subject: &str) -> Vec<Advantage> {
    let mut names: Vec<String> = Vec::new();
    for r in results {
        for p in &r.points {
            for a in &p.approaches {
                if a.name != subject && !names.iter().any(|n| n == a.name) {
                    names.push(a.name.to_string());
                }
            }
        }
    }
    names
        .into_iter()
        .map(|against| {
            let mut rate_sum = 0.0;
            let mut latency_sum = 0.0;
            let mut count = 0usize;
            for r in results {
                for p in &r.points {
                    let subj = p.approaches.iter().find(|a| a.name == subject);
                    let oth = p.approaches.iter().find(|a| a.name == against);
                    let (Some(subj), Some(oth)) = (subj, oth) else { continue };
                    let rs = subj.rate_summary().mean;
                    let ro = oth.rate_summary().mean;
                    let ls = subj.latency_summary().mean;
                    let lo = oth.latency_summary().mean;
                    if ro > 0.0 {
                        rate_sum += (rs - ro) / ro;
                    }
                    if lo > 0.0 {
                        latency_sum += (lo - ls) / lo;
                    }
                    count += 1;
                }
            }
            let count = count.max(1) as f64;
            Advantage {
                subject: subject.to_string(),
                against,
                rate_advantage: rate_sum / count,
                latency_advantage: latency_sum / count,
            }
        })
        .collect()
}

/// Renders the advantages as a §4.5.1-style sentence block.
pub fn advantage_report(advantages: &[Advantage]) -> String {
    let mut out = String::new();
    for a in advantages {
        out.push_str(&format!(
            "{} vs {}: rate {:+.2}%, latency {:+.2}%\n",
            a.subject,
            a.against,
            a.rate_advantage * 100.0,
            a.latency_advantage * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentPoint, ExperimentSet};
    use crate::runner::{ApproachSamples, PointResult};

    fn result() -> SetResult {
        let set = ExperimentSet {
            id: 1,
            varied: "N",
            points: vec![ExperimentPoint { n: 20, m: 200, k: 5, density: 1.0 }],
        };
        let mk = |name, rate: f64, lat: f64| ApproachSamples {
            name,
            rates: vec![rate],
            latencies: vec![lat],
            times: vec![0.0],
        };
        SetResult {
            points: vec![PointResult {
                point: set.points[0],
                approaches: vec![mk("IDDE-G", 120.0, 5.0), mk("SAA", 80.0, 10.0)],
            }],
            set,
        }
    }

    #[test]
    fn advantage_math() {
        let advantages = advantages(&[result()], "IDDE-G");
        assert_eq!(advantages.len(), 1);
        let a = &advantages[0];
        assert_eq!(a.against, "SAA");
        // (120 − 80)/80 = +50% rate; (10 − 5)/10 = +50% latency.
        assert!((a.rate_advantage - 0.5).abs() < 1e-12);
        assert!((a.latency_advantage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_formats_percentages() {
        let text = advantage_report(&advantages(&[result()], "IDDE-G"));
        assert!(text.contains("IDDE-G vs SAA"), "{text}");
        assert!(text.contains("+50.00%"), "{text}");
    }

    #[test]
    fn unknown_subject_yields_zero_counts_not_panics() {
        let advantages = advantages(&[result()], "NOPE");
        for a in advantages {
            assert_eq!(a.rate_advantage, 0.0);
            assert_eq!(a.latency_advantage, 0.0);
        }
    }
}
