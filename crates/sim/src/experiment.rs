//! Table 2: the four experiment sets.
//!
//! | Set | `N` | `M` | `K` | `density` |
//! |-----|-----|-----|-----|-----------|
//! | #1  | 20…50 step 5 | 200 | 5 | 1.0 |
//! | #2  | 30 | 50…350 step 50 | 5 | 1.0 |
//! | #3  | 30 | 200 | 2…8 step 1 | 1.0 |
//! | #4  | 30 | 200 | 5 | 1.0…3.0 step 0.4 |

use std::fmt;

/// One experiment point: a full parameter assignment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentPoint {
    /// Number of edge servers `N`.
    pub n: usize,
    /// Number of users `M`.
    pub m: usize,
    /// Number of data items `K`.
    pub k: usize,
    /// Network density.
    pub density: f64,
}

impl ExperimentPoint {
    /// The default point shared by all sets (`N=30, M=200, K=5, d=1.0`).
    pub fn default_point() -> Self {
        Self { n: 30, m: 200, k: 5, density: 1.0 }
    }
}

impl fmt::Display for ExperimentPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N={} M={} K={} density={:.1}", self.n, self.m, self.k, self.density)
    }
}

/// One experiment set: a sweep of one parameter with the others fixed.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSet {
    /// 1-based set number as in Table 2.
    pub id: usize,
    /// Human-readable name of the varying parameter.
    pub varied: &'static str,
    /// The points of the sweep, in order.
    pub points: Vec<ExperimentPoint>,
}

impl ExperimentSet {
    /// The x-axis value of a point of this set (the varied parameter).
    pub fn x_value(&self, point: &ExperimentPoint) -> f64 {
        match self.id {
            1 => point.n as f64,
            2 => point.m as f64,
            3 => point.k as f64,
            4 => point.density,
            _ => unreachable!("only sets 1-4 exist"),
        }
    }
}

/// The four sets of Table 2.
pub fn table2_sets() -> Vec<ExperimentSet> {
    let base = ExperimentPoint::default_point();
    vec![
        ExperimentSet {
            id: 1,
            varied: "Number of Edge Servers N",
            points: (20..=50).step_by(5).map(|n| ExperimentPoint { n, ..base }).collect(),
        },
        ExperimentSet {
            id: 2,
            varied: "Number of Users M",
            points: (50..=350).step_by(50).map(|m| ExperimentPoint { m, ..base }).collect(),
        },
        ExperimentSet {
            id: 3,
            varied: "Number of Data K",
            points: (2..=8).map(|k| ExperimentPoint { k, ..base }).collect(),
        },
        ExperimentSet {
            id: 4,
            varied: "density",
            points: (0..6)
                .map(|i| ExperimentPoint { density: 1.0 + 0.4 * i as f64, ..base })
                .collect(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes() {
        let sets = table2_sets();
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0].points.len(), 7); // N = 20,25,…,50
        assert_eq!(sets[1].points.len(), 7); // M = 50,…,350
        assert_eq!(sets[2].points.len(), 7); // K = 2..8
        assert_eq!(sets[3].points.len(), 6); // density = 1.0,1.4,…,3.0
        assert_eq!(sets[0].points[0].n, 20);
        assert_eq!(sets[0].points[6].n, 50);
        assert_eq!(sets[1].points[6].m, 350);
        assert_eq!(sets[2].points[0].k, 2);
        assert!((sets[3].points[5].density - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_parameters_match_the_default_point() {
        let sets = table2_sets();
        for p in &sets[0].points {
            assert_eq!((p.m, p.k), (200, 5));
            assert_eq!(p.density, 1.0);
        }
        for p in &sets[3].points {
            assert_eq!((p.n, p.m, p.k), (30, 200, 5));
        }
    }

    #[test]
    fn x_values_track_the_varied_parameter() {
        let sets = table2_sets();
        assert_eq!(sets[0].x_value(&sets[0].points[1]), 25.0);
        assert_eq!(sets[1].x_value(&sets[1].points[0]), 50.0);
        assert_eq!(sets[2].x_value(&sets[2].points[6]), 8.0);
        assert!((sets[3].x_value(&sets[3].points[1]) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let p = ExperimentPoint::default_point();
        assert_eq!(p.to_string(), "N=30 M=200 K=5 density=1.0");
    }
}
