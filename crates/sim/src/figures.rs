//! The Fig. 1 end-to-end latency micro-experiment.
//!
//! The paper motivates edge storage with a week of hourly latency probes
//! from a mobile device to (a) a nearby edge server and (b) Amazon's
//! Singapore, London and Frankfurt regions. That testbed is replaced here
//! (see DESIGN.md's substitution table) by a latency model with the same
//! structure:
//!
//! * **edge** — one wireless hop plus 1–3 edge-network hops of sub-ms to
//!   few-ms propagation each (metro-distance fibre);
//! * **cloud regions** — public inter-continental round-trip baselines from
//!   an Australian vantage point (the authors' location), plus multiplicative
//!   jitter representing diurnal congestion.
//!
//! The regenerated figure reproduces the paper's qualitative content: the
//! edge bar sits an order of magnitude below every cloud bar, and the cloud
//! bars grow with geographic distance.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::stats::Summary;

/// Configuration of the Fig. 1 simulation.
#[derive(Clone, Copy, Debug)]
pub struct Fig1Config {
    /// Probes per target (paper: hourly over a week = 168).
    pub samples_per_target: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Self { samples_per_target: 168, seed: 2022 }
    }
}

/// One bar of the figure.
#[derive(Clone, Debug)]
pub struct LatencyProbe {
    /// Target label as in the paper's x-axis.
    pub target: &'static str,
    /// Summary of the probe latencies (ms).
    pub summary: Summary,
}

/// Runs the simulated latency test and returns the four bars in the
/// paper's order: Edge, Singapore, London, Frankfurt.
pub fn fig1_latency_test(config: &Fig1Config) -> Vec<LatencyProbe> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // (label, base RTT ms, jitter span). Cloud baselines follow public
    // AU-east → region figures; the edge baseline is a metro hop budget.
    let targets: [(&'static str, f64, f64); 4] = [
        ("Edge", 0.0, 0.0), // handled specially below
        ("Singapore", 95.0, 0.35),
        ("London", 240.0, 0.25),
        ("Frankfurt", 265.0, 0.25),
    ];
    targets
        .iter()
        .map(|&(target, base, jitter)| {
            let samples: Vec<f64> = (0..config.samples_per_target)
                .map(|_| {
                    if target == "Edge" {
                        // Wireless access + 1..=3 metro fibre hops.
                        let wireless = rng.gen_range(1.0..4.0);
                        let hops = rng.gen_range(1..=3);
                        let fibre: f64 = (0..hops).map(|_| rng.gen_range(0.5..3.0)).sum();
                        wireless + fibre
                    } else {
                        base * (1.0 + rng.gen_range(0.0..jitter))
                    }
                })
                .collect();
            LatencyProbe { target, summary: Summary::of(&samples) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_ordering() {
        let bars = fig1_latency_test(&Fig1Config::default());
        assert_eq!(bars.len(), 4);
        assert_eq!(bars[0].target, "Edge");
        let means: Vec<f64> = bars.iter().map(|b| b.summary.mean).collect();
        // Edge ≪ Singapore < London < Frankfurt.
        assert!(means[0] < 15.0, "edge mean = {}", means[0]);
        assert!(means[0] * 5.0 < means[1], "edge must be ≫ below Singapore");
        assert!(means[1] < means[2]);
        assert!(means[2] < means[3]);
        // Cloud latencies live in the paper's 50-300 ms band.
        assert!(means[3] < 350.0);
    }

    #[test]
    fn sample_counts_match_config() {
        let bars = fig1_latency_test(&Fig1Config { samples_per_target: 24, seed: 1 });
        for b in &bars {
            assert_eq!(b.summary.count, 24);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fig1_latency_test(&Fig1Config::default());
        let b = fig1_latency_test(&Fig1Config::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.summary, y.summary);
        }
    }
}
