//! # idde-sim — the §4 experiment harness
//!
//! Everything needed to regenerate the paper's evaluation:
//!
//! * [`experiment`] — the four parameter sets of Table 2 (`N`, `M`, `K`,
//!   `density` sweeps around the `N=30, M=200, K=5, density=1.0` default);
//! * [`runner`] — seeded, rayon-parallel execution of the 50-repetition
//!   sweeps over the five-approach panel, with per-run wall-clock timing;
//! * [`stats`] — summary statistics (mean/std/quartiles) for the series
//!   plots (Figs. 3–6) and the computation-time box plot (Fig. 7);
//! * [`report`] — ASCII tables for the terminal and CSV files for external
//!   plotting;
//! * [`figures`] — the Fig. 1 end-to-end latency micro-experiment.
//!
//! Reproducibility: every repetition's randomness derives from
//! `(master_seed, set, point, repetition)` through `ChaCha8Rng`, so each
//! figure in `EXPERIMENTS.md` regenerates bit-identically on any machine
//! (modulo wall-clock timings).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod experiment;
pub mod figures;
pub mod plot;
pub mod report;
pub mod runner;
pub mod stats;

pub use analysis::{advantage_report, advantages, Advantage};
pub use experiment::{table2_sets, ExperimentPoint, ExperimentSet};
pub use runner::{PointResult, RunConfig, Runner, SetResult};
pub use stats::Summary;
