//! Minimal ASCII line charts for terminal figure output.
//!
//! The figure-regeneration binaries print their series both as tables (for
//! exact values) and as quick charts (for eyeballing the trends the paper
//! plots). No external plotting dependency: a fixed-size character canvas
//! with one glyph per series.

/// A named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// Renders the series into an ASCII chart of the given inner size.
///
/// Returns a multi-line string: chart rows (y axis labelled at top/bottom),
/// an x-axis line, and a legend mapping glyphs to labels.
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let width = width.max(8);
    let height = height.max(4);

    let all_points: Vec<(f64, f64)> =
        series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all_points.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all_points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            canvas[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in canvas.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>9.2} ")
        } else if i == height - 1 {
            format!("{y_min:>9.2} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>11}{:.1}{}{:.1}\n",
        "",
        x_min,
        " ".repeat(width.saturating_sub(8)),
        x_max
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

/// Convenience: builds the chart of one metric of a [`crate::SetResult`].
pub fn chart_set(
    result: &crate::runner::SetResult,
    metric: &str,
    value: impl Fn(&crate::runner::ApproachSamples) -> f64,
) -> String {
    let names: Vec<&str> = result.points[0].approaches.iter().map(|a| a.name).collect();
    let series: Vec<Series> = names
        .iter()
        .enumerate()
        .map(|(a, name)| Series {
            label: name.to_string(),
            points: result
                .points
                .iter()
                .map(|p| (result.set.x_value(&p.point), value(&p.approaches[a])))
                .collect(),
        })
        .collect();
    format!("{metric} vs {}\n{}", result.set.varied, render(&series, 56, 14))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series { label: "up".into(), points: vec![(0.0, 0.0), (1.0, 5.0), (2.0, 10.0)] },
            Series { label: "down".into(), points: vec![(0.0, 10.0), (1.0, 5.0), (2.0, 0.0)] },
        ]
    }

    #[test]
    fn renders_axes_glyphs_and_legend() {
        let chart = render(&series(), 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("up"));
        assert!(chart.contains("down"));
        assert!(chart.contains("10.00"), "{chart}");
        assert!(chart.contains("0.00"));
        assert!(chart.contains("+----"));
    }

    #[test]
    fn increasing_series_rises_left_to_right() {
        let chart = render(&series()[..1], 40, 10);
        let rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        // The topmost row with a glyph must have it to the right of the
        // bottommost row's glyph.
        let top = rows.iter().position(|r| r.contains('*')).unwrap();
        let bottom = rows.iter().rposition(|r| r.contains('*')).unwrap();
        let top_col = rows[top].find('*').unwrap();
        let bottom_col = rows[bottom].find('*').unwrap();
        assert!(top < bottom);
        assert!(top_col > bottom_col, "{chart}");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(render(&[], 40, 10), "(no data)\n");
        let flat = vec![Series { label: "flat".into(), points: vec![(1.0, 3.0), (2.0, 3.0)] }];
        let chart = render(&flat, 40, 10);
        assert!(chart.contains('*'));
        let single = vec![Series { label: "dot".into(), points: vec![(1.0, 1.0)] }];
        assert!(render(&single, 8, 4).contains('*'));
    }
}
