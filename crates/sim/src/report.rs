//! Rendering experiment results: terminal tables and CSV files.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::runner::{PointResult, SetResult};

/// Renders one set's mean `R_avg` series as an ASCII table — the data of
/// the paper's Fig. 3(a)/4(a)/5(a)/6(a).
pub fn rate_table(result: &SetResult) -> String {
    metric_table(result, "R_avg (MB/s)", |p, a| p.approaches[a].rate_summary().mean)
}

/// Renders one set's mean `L_avg` series — Fig. 3(b)/4(b)/5(b)/6(b).
pub fn latency_table(result: &SetResult) -> String {
    metric_table(result, "L_avg (ms)", |p, a| p.approaches[a].latency_summary().mean)
}

/// Renders one set's mean computation-time series — the data of Fig. 7.
pub fn time_table(result: &SetResult) -> String {
    metric_table(result, "time (s)", |p, a| p.approaches[a].time_summary().mean)
}

/// Renders a scaling sweep — `(shard count, median ms)` points — as an
/// ASCII table with the speedup of each point relative to the first.
/// `idde bench` uses this to summarise the engine suite's `shard_scaling`
/// case (see EXPERIMENTS.md § Shard scaling); the renderer itself is
/// agnostic to what the sweep axis counts.
pub fn scaling_table(label: &str, points: &[(usize, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{label}");
    let _ = writeln!(out, "{:>8} {:>12} {:>9}", "K", "median (ms)", "speedup");
    let base = points.first().map(|&(_, ms)| ms);
    for &(k, ms) in points {
        match base {
            Some(b) if ms > 0.0 => {
                let _ = writeln!(out, "{:>8} {:>12.3} {:>8.2}x", k, ms, b / ms);
            }
            _ => {
                let _ = writeln!(out, "{:>8} {:>12.3} {:>9}", k, ms, "-");
            }
        }
    }
    out
}

fn metric_table(
    result: &SetResult,
    metric: &str,
    value: impl Fn(&PointResult, usize) -> f64,
) -> String {
    let mut out = String::new();
    let names: Vec<&str> = result.points[0].approaches.iter().map(|a| a.name).collect();
    let _ = writeln!(out, "Set #{} — {} vs {}", result.set.id, metric, result.set.varied);
    let _ = write!(out, "{:>10}", result.set.varied.split(' ').next_back().unwrap_or("x"));
    for name in &names {
        let _ = write!(out, "{name:>12}");
    }
    let _ = writeln!(out);
    for point in &result.points {
        let _ = write!(out, "{:>10}", format_x(result.set.x_value(&point.point)));
        for a in 0..names.len() {
            let _ = write!(out, "{:>12.4}", value(point, a));
        }
        let _ = writeln!(out);
    }
    out
}

fn format_x(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.1}")
    }
}

/// Writes one set's full per-point statistics as CSV:
/// `x,approach,metric,count,mean,std,min,q1,median,q3,max` rows for the
/// three metrics.
pub fn write_csv(result: &SetResult, path: &Path) -> io::Result<()> {
    let mut out = String::from("x,approach,metric,count,mean,std,min,q1,median,q3,max\n");
    for point in &result.points {
        let x = result.set.x_value(&point.point);
        for a in &point.approaches {
            for (metric, s) in [
                ("rate_mbps", a.rate_summary()),
                ("latency_ms", a.latency_summary()),
                ("time_s", a.time_summary()),
            ] {
                let _ = writeln!(
                    out,
                    "{x},{},{metric},{},{},{},{},{},{},{},{}",
                    a.name, s.count, s.mean, s.std, s.min, s.q1, s.median, s.q3, s.max
                );
            }
        }
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentPoint, ExperimentSet};
    use crate::runner::ApproachSamples;

    fn fake_result() -> SetResult {
        let set = ExperimentSet {
            id: 1,
            varied: "Number of Edge Servers N",
            points: vec![
                ExperimentPoint { n: 20, m: 200, k: 5, density: 1.0 },
                ExperimentPoint { n: 25, m: 200, k: 5, density: 1.0 },
            ],
        };
        let mk = |name, base: f64| ApproachSamples {
            name,
            rates: vec![base, base + 2.0],
            latencies: vec![base / 10.0, base / 10.0 + 0.5],
            times: vec![0.01, 0.02],
        };
        SetResult {
            points: set
                .points
                .iter()
                .map(|p| PointResult {
                    point: *p,
                    approaches: vec![mk("IDDE-G", 100.0), mk("SAA", 60.0)],
                })
                .collect(),
            set,
        }
    }

    #[test]
    fn tables_contain_headers_and_values() {
        let r = fake_result();
        let t = rate_table(&r);
        assert!(t.contains("Set #1"), "{t}");
        assert!(t.contains("IDDE-G"));
        assert!(t.contains("SAA"));
        assert!(t.contains("101.0000"), "{t}"); // mean of 100, 102
        let t = latency_table(&r);
        assert!(t.contains("L_avg"));
        let t = time_table(&r);
        assert!(t.contains("time (s)"));
    }

    #[test]
    fn scaling_table_reports_speedups_against_the_first_point() {
        let t = scaling_table("shard scaling", &[(1, 100.0), (2, 50.0), (4, 20.0)]);
        assert!(t.contains("shard scaling"), "{t}");
        assert!(t.contains("speedup"), "{t}");
        assert!(t.contains("1.00x"), "{t}");
        assert!(t.contains("2.00x"), "{t}");
        assert!(t.contains("5.00x"), "{t}");
        // A zero median (sub-precision timing) renders a dash, not a panic.
        let t = scaling_table("degenerate", &[(1, 0.0), (2, 0.0)]);
        assert!(t.contains('-'), "{t}");
        assert!(scaling_table("empty", &[]).contains("median"));
    }

    #[test]
    fn csv_round_trip() {
        let r = fake_result();
        let dir = std::env::temp_dir().join("idde-sim-report-test");
        let path = dir.join("set1.csv");
        write_csv(&r, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        // header + 2 points × 2 approaches × 3 metrics
        assert_eq!(lines.len(), 1 + 12);
        assert!(lines[0].starts_with("x,approach,metric"));
        assert!(content.contains("20,IDDE-G,rate_mbps,2,101,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
