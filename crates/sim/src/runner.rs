//! Seeded, parallel execution of the experiment sweeps.
//!
//! Each repetition of each experiment point:
//!
//! 1. derives a `ChaCha8Rng` from `(master_seed, set, point, rep)`,
//! 2. samples a fresh scenario from the (shared, fixed) base population —
//!    servers, users, storage, data sizes, requests — and a fresh topology
//!    at the point's density (§4.3: "each experiment is run 50 times"),
//! 3. runs every approach of the panel on the *same* problem instance,
//!    measuring wall-clock formulation time (§4.4's third metric),
//! 4. scores each strategy with the shared evaluator.
//!
//! Repetitions run in parallel under rayon (they are fully independent);
//! approaches within one repetition run sequentially so the timing of one
//! approach is not polluted by the others. Wall-clock timings are the only
//! machine-dependent output; rates and latencies are bit-reproducible.

use std::time::{Duration, Instant};

use idde_baselines::{standard_panel, DeliveryStrategy};
use idde_chaos::{Fault, FaultSpec};
use idde_core::Problem;
use idde_eua::{BasePopulation, SampleConfig, SyntheticEua};
use idde_net::{generate_topology, LinkState, NetworkFaults, TopologyConfig};
use idde_radio::{RadioEnvironment, RadioParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::experiment::{ExperimentPoint, ExperimentSet};
use crate::stats::Summary;

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Repetitions per experiment point (paper: 50).
    pub repetitions: usize,
    /// Master seed from which all randomness derives.
    pub master_seed: u64,
    /// Total IDDE-IP budget per run (the paper's 100 s scaled to taste).
    pub iddeip_budget: Duration,
    /// Skip IDDE-IP entirely (it dominates the wall-clock of a full sweep).
    pub skip_iddeip: bool,
    /// Sampling mode: `true` (default) draws users only from covered sites
    /// (the paper's "all users can be allocated" assumption); `false`
    /// draws uniformly, leaving an N-dependent share unallocated.
    pub require_coverage: bool,
    /// Audit every produced strategy with [`idde_audit::Auditor`] and panic
    /// on any invariant violation (slow; meant for seeded CI sweeps).
    pub audit_strategies: bool,
    /// Evaluate the panel on *statically degraded* infrastructure: an
    /// `idde-chaos` fault spec whose faults are all applied up-front to
    /// every repetition's instance (the schedule — onset ticks and
    /// durations — is ignored; the offline formulation sees the surviving
    /// system). Link cuts and outages shrink the topology and coverage,
    /// jams raise the Eq. 2 interference floor. `rand:` specs are the
    /// robust choice here, since explicit link pairs may not exist in a
    /// given repetition's sampled topology.
    pub fault_spec: Option<String>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            repetitions: 50,
            master_seed: 2022,
            iddeip_budget: Duration::from_secs(1),
            skip_iddeip: false,
            require_coverage: true,
            audit_strategies: false,
            fault_spec: None,
        }
    }
}

/// One approach's raw samples at one experiment point.
#[derive(Clone, Debug)]
pub struct ApproachSamples {
    /// Approach display name.
    pub name: &'static str,
    /// `R_avg` per repetition (MB/s).
    pub rates: Vec<f64>,
    /// `L_avg` per repetition (ms).
    pub latencies: Vec<f64>,
    /// Formulation time per repetition (seconds).
    pub times: Vec<f64>,
}

impl ApproachSamples {
    /// Summary of the rate samples.
    pub fn rate_summary(&self) -> Summary {
        Summary::of(&self.rates)
    }

    /// Summary of the latency samples.
    pub fn latency_summary(&self) -> Summary {
        Summary::of(&self.latencies)
    }

    /// Summary of the timing samples.
    pub fn time_summary(&self) -> Summary {
        Summary::of(&self.times)
    }
}

/// All approaches' samples at one experiment point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The experiment point.
    pub point: ExperimentPoint,
    /// Per-approach samples, in panel order.
    pub approaches: Vec<ApproachSamples>,
}

/// A fully executed experiment set.
#[derive(Clone, Debug)]
pub struct SetResult {
    /// The set that was run.
    pub set: ExperimentSet,
    /// One result per point, in sweep order.
    pub points: Vec<PointResult>,
}

/// The experiment runner: a fixed base population plus a configuration.
pub struct Runner {
    population: BasePopulation,
    config: RunConfig,
}

impl Runner {
    /// Creates a runner over the default synthetic EUA-like population
    /// (seeded from `config.master_seed`, mirroring the fixed real dataset).
    pub fn new(config: RunConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.master_seed ^ 0x45_55_41); // "EUA"
        let population = SyntheticEua::default().generate(&mut rng);
        Self::with_population(population, config)
    }

    /// Creates a runner over an explicit base population (e.g. loaded from
    /// the real EUA CSVs).
    pub fn with_population(population: BasePopulation, config: RunConfig) -> Self {
        Self { population, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Derives the repetition RNG for `(set, point, rep)`.
    fn rep_rng(&self, set_id: usize, point_idx: usize, rep: usize) -> ChaCha8Rng {
        // Mix the coordinates into one 64-bit stream id (SplitMix64-style).
        let mut z = self.config.master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(
            1 + set_id as u64 + 1000 * (point_idx as u64 + 1) + 1_000_000 * (rep as u64 + 1),
        ));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
    }

    /// Builds the problem instance of one repetition. With
    /// [`RunConfig::fault_spec`] set, the instance is degraded up-front:
    /// every fault in the spec is applied statically before the panel sees
    /// the problem.
    pub fn build_problem(
        &self,
        set_id: usize,
        point: &ExperimentPoint,
        point_idx: usize,
        rep: usize,
    ) -> Problem {
        let mut rng = self.rep_rng(set_id, point_idx, rep);
        let mut sample_config = SampleConfig::paper(point.n, point.m, point.k);
        sample_config.require_coverage = self.config.require_coverage;
        let mut scenario = sample_config.sample(&self.population, &mut rng);
        let mut radio = RadioEnvironment::new(&scenario, RadioParams::paper());
        let mut topology =
            generate_topology(point.n, &TopologyConfig::paper(point.density), &mut rng);

        if let Some(spec) = &self.config.fault_spec {
            let plan = FaultSpec::parse(spec)
                .and_then(|s| s.compile(topology.graph()))
                .unwrap_or_else(|e| panic!("RunConfig::fault_spec: {e}"));
            let graph = topology.graph().clone();
            let mut faults = NetworkFaults::healthy(graph.num_nodes(), graph.num_links());
            for w in plan.windows() {
                match w.fault {
                    Fault::LinkCut { a, b } => {
                        faults.set_link(graph.find_link(a, b).unwrap(), LinkState::Down);
                    }
                    Fault::LinkSlow { a, b, factor } => {
                        faults
                            .set_link(graph.find_link(a, b).unwrap(), LinkState::Degraded(factor));
                    }
                    Fault::Outage { server } => {
                        faults.set_server(server, false);
                        scenario.coverage.disable_server(server);
                    }
                    Fault::Jamming { server, floor_w } => radio.set_jamming(server, floor_w),
                }
            }
            topology =
                faults.effective_topology(&graph, topology.cloud_speed(), topology.path_model());
        }
        Problem::new(scenario, radio, topology)
    }

    fn panel(&self) -> Vec<Box<dyn DeliveryStrategy + Send + Sync>> {
        let mut panel = standard_panel(self.config.iddeip_budget);
        if self.config.skip_iddeip {
            panel.retain(|s| s.name() != "IDDE-IP");
        }
        panel
    }

    /// Runs one experiment point: `repetitions` independent instances, all
    /// approaches on each, in parallel over repetitions.
    pub fn run_point(
        &self,
        set_id: usize,
        point_idx: usize,
        point: &ExperimentPoint,
    ) -> PointResult {
        let reps: Vec<Vec<(f64, f64, f64)>> = (0..self.config.repetitions)
            .into_par_iter()
            .map(|rep| {
                let problem = self.build_problem(set_id, point, point_idx, rep);
                let panel = self.panel();
                panel
                    .iter()
                    .map(|approach| {
                        let t0 = Instant::now();
                        let strategy = approach.solve_seeded(&problem, rep as u64);
                        let elapsed = t0.elapsed().as_secs_f64();
                        if self.config.audit_strategies {
                            let report = idde_audit::Auditor::default().audit_strategy(
                                &problem,
                                &strategy.allocation,
                                &strategy.placement,
                            );
                            assert!(report.is_clean(), "{} rep {rep}: {report}", approach.name());
                        }
                        let metrics = problem.evaluate(&strategy);
                        (
                            metrics.average_data_rate.value(),
                            metrics.average_delivery_latency.value(),
                            elapsed,
                        )
                    })
                    .collect()
            })
            .collect();

        let names: Vec<&'static str> = self.panel().iter().map(|s| s.name()).collect();
        let approaches = names
            .iter()
            .enumerate()
            .map(|(a, &name)| ApproachSamples {
                name,
                rates: reps.iter().map(|r| r[a].0).collect(),
                latencies: reps.iter().map(|r| r[a].1).collect(),
                times: reps.iter().map(|r| r[a].2).collect(),
            })
            .collect();
        PointResult { point: *point, approaches }
    }

    /// Runs a whole experiment set.
    pub fn run_set(&self, set: &ExperimentSet) -> SetResult {
        let points =
            set.points.iter().enumerate().map(|(idx, p)| self.run_point(set.id, idx, p)).collect();
        SetResult { set: set.clone(), points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::table2_sets;

    fn quick_config() -> RunConfig {
        RunConfig {
            repetitions: 3,
            master_seed: 7,
            iddeip_budget: Duration::from_millis(30),
            skip_iddeip: false,
            require_coverage: true,
            audit_strategies: false,
            fault_spec: None,
        }
    }

    #[test]
    fn run_point_produces_full_samples() {
        let runner = Runner::new(quick_config());
        let point = ExperimentPoint { n: 15, m: 40, k: 3, density: 1.0 };
        let result = runner.run_point(1, 0, &point);
        assert_eq!(result.approaches.len(), 5);
        for a in &result.approaches {
            assert_eq!(a.rates.len(), 3, "{}", a.name);
            assert_eq!(a.latencies.len(), 3);
            assert_eq!(a.times.len(), 3);
            assert!(a.rates.iter().all(|&r| r > 0.0), "{} has zero rates", a.name);
            assert!(a.latencies.iter().all(|&l| l >= 0.0));
        }
    }

    #[test]
    fn quality_metrics_are_reproducible() {
        let point = ExperimentPoint { n: 12, m: 30, k: 3, density: 1.0 };
        let a = Runner::new(quick_config()).run_point(2, 1, &point);
        let b = Runner::new(quick_config()).run_point(2, 1, &point);
        for (x, y) in a.approaches.iter().zip(&b.approaches) {
            // IDDE-IP is wall-clock bounded, hence not bit-reproducible.
            if x.name == "IDDE-IP" {
                continue;
            }
            assert_eq!(x.rates, y.rates, "{} rates differ", x.name);
            assert_eq!(x.latencies, y.latencies, "{} latencies differ", x.name);
        }
    }

    #[test]
    fn different_reps_see_different_instances() {
        let runner = Runner::new(quick_config());
        let point = ExperimentPoint { n: 12, m: 30, k: 3, density: 1.0 };
        let p0 = runner.build_problem(1, &point, 0, 0);
        let p1 = runner.build_problem(1, &point, 0, 1);
        assert_ne!(
            p0.scenario.users.iter().map(|u| u.power.value()).collect::<Vec<_>>(),
            p1.scenario.users.iter().map(|u| u.power.value()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn audited_point_run_passes_every_strategy_audit() {
        let mut cfg = quick_config();
        cfg.repetitions = 2;
        cfg.skip_iddeip = true;
        cfg.audit_strategies = true;
        let runner = Runner::new(cfg);
        let point = ExperimentPoint { n: 10, m: 25, k: 3, density: 1.0 };
        // Panics inside run_point if any panel strategy fails its audit.
        let result = runner.run_point(1, 0, &point);
        assert_eq!(result.approaches.len(), 4);
    }

    #[test]
    fn skip_iddeip_drops_the_panelist() {
        let mut cfg = quick_config();
        cfg.skip_iddeip = true;
        let runner = Runner::new(cfg);
        let point = ExperimentPoint { n: 10, m: 20, k: 2, density: 1.0 };
        let result = runner.run_point(1, 0, &point);
        assert_eq!(result.approaches.len(), 4);
        assert!(result.approaches.iter().all(|a| a.name != "IDDE-IP"));
    }

    #[test]
    fn degraded_infrastructure_changes_the_instance_but_stays_solvable() {
        let point = ExperimentPoint { n: 10, m: 25, k: 3, density: 1.0 };
        let healthy = Runner::new(quick_config());
        let mut cfg = quick_config();
        cfg.repetitions = 2;
        cfg.skip_iddeip = true;
        // Two random link cuts, one outage, one jam — applied statically.
        cfg.fault_spec = Some("rand:5:2:1:1@1+1".into());
        let degraded = Runner::new(cfg);

        let h = healthy.build_problem(1, &point, 0, 0);
        let d = degraded.build_problem(1, &point, 0, 0);
        // Two cuts plus any links stranded by the outage must leave the
        // surviving graph at least two links smaller.
        assert!(d.topology.graph().num_links() + 2 <= h.topology.graph().num_links());

        // The degraded panel still produces feasible, positive-rate
        // strategies over the surviving system.
        let result = degraded.run_point(1, 0, &point);
        for a in &result.approaches {
            assert!(a.rates.iter().all(|&r| r > 0.0), "{} has zero rates", a.name);
        }
    }

    #[test]
    #[should_panic(expected = "RunConfig::fault_spec")]
    fn bad_fault_spec_is_a_loud_config_error() {
        let mut cfg = quick_config();
        cfg.fault_spec = Some("meteor:1@2".into());
        let point = ExperimentPoint { n: 10, m: 25, k: 3, density: 1.0 };
        Runner::new(cfg).build_problem(1, &point, 0, 0);
    }

    #[test]
    fn set_runner_covers_all_points() {
        let mut cfg = quick_config();
        cfg.repetitions = 1;
        cfg.skip_iddeip = true;
        let runner = Runner::new(cfg);
        // A shrunken copy of Set #3 to keep the test quick.
        let mut set = table2_sets().remove(2);
        set.points.truncate(2);
        for p in &mut set.points {
            p.n = 10;
            p.m = 25;
        }
        let result = runner.run_set(&set);
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.set.id, 3);
    }
}
