//! Summary statistics over repetition samples.

/// Five-number-plus summary of a sample set, used for the series plots
//  (mean ± std) and the Fig. 7 computation-time box plot (quartiles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample set. Returns a zeroed summary for
    /// an empty input.
    pub fn of(samples: &[f64]) -> Self {
        let count = samples.len();
        if count == 0 {
            return Self {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / count as f64;
        let std = if count > 1 {
            (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64)
                .sqrt()
        } else {
            0.0
        };
        // `total_cmp` is a total order (NaN sorts above +inf), so a stray
        // NaN sample degrades the summary instead of panicking mid-run.
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self {
            count,
            mean,
            std,
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[count - 1],
        }
    }
}

/// Linear-interpolation quantile of a pre-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((s.std - 2.138).abs() < 1e-3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn quartiles_interpolate() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);

        let single = Summary::of(&[3.5]);
        assert_eq!(single.count, 1);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.median, 3.5);
        assert_eq!(single.q1, 3.5);
    }

    #[test]
    fn order_invariance() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    /// NaN-bearing samples must not panic (the old `partial_cmp(...).expect`
    /// sort did): under `total_cmp` positive NaNs sort above `+inf`, so the
    /// finite order statistics stay meaningful and the NaN surfaces in
    /// `max`/`mean` where a caller can see it.
    #[test]
    fn nan_samples_do_not_panic() {
        let s = Summary::of(&[2.0, f64::NAN, 1.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert!(s.max.is_nan());
        assert!(s.mean.is_nan());
        let all_nan = Summary::of(&[f64::NAN]);
        assert_eq!(all_nan.count, 1);
        assert!(all_nan.median.is_nan());
    }

    /// Tiny sample counts: the linear-interpolation index math
    /// (`pos = q·(n−1)`) is exact at both ends and never indexes out of
    /// bounds for n = 2 and n = 3.
    #[test]
    fn tiny_inputs_interpolate_correctly() {
        let two = Summary::of(&[1.0, 3.0]);
        assert!((two.q1 - 1.5).abs() < 1e-12);
        assert!((two.median - 2.0).abs() < 1e-12);
        assert!((two.q3 - 2.5).abs() < 1e-12);
        let three = Summary::of(&[1.0, 2.0, 10.0]);
        assert!((three.q1 - 1.5).abs() < 1e-12);
        assert!((three.median - 2.0).abs() < 1e-12);
        assert!((three.q3 - 6.0).abs() < 1e-12);
        assert_eq!(three.min, 1.0);
        assert_eq!(three.max, 10.0);
    }
}
