//! Branch-and-bound over user allocation profiles (Objective #1).
//!
//! Depth-first search assigning users in id order. At each node the
//! remaining users are relaxed to their Shannon caps, giving the admissible
//! upper bound
//!
//! ```text
//! UB(partial) = Σ_{allocated j} R_j(partial) + Σ_{unassigned j} R_{j,max}
//! ```
//!
//! which is valid because every user's rate is non-increasing in the set of
//! other allocated users (more occupants only add interference, Eq. 2).
//! Candidates at each level are explored best-immediate-rate-first, so the
//! first dive already produces a greedy-quality incumbent and the search
//! improves from there — the classic behaviour of objective-driven CP/ILP
//! solvers that IDDE-IP models.

use idde_core::Problem;
use idde_model::{Allocation, ChannelIndex, ServerId, UserId};
use idde_radio::InterferenceField;

use crate::budget::{Budget, SearchStats};

/// Anytime branch-and-bound maximising the total data rate `Σ_j R_j`.
#[derive(Debug)]
pub struct AllocationSearch<'a> {
    problem: &'a Problem,
    budget: Budget,
    /// Whether the "leave the user unallocated" branch is explored for
    /// covered users. The optimum may genuinely leave users out (removing a
    /// user removes its interference), but the branch widens the space;
    /// IDDE-IP keeps it on to match the §2.3 model faithfully.
    pub allow_unallocated: bool,
}

struct SearchState<'a, 'b> {
    problem: &'a Problem,
    budget: Budget,
    allow_unallocated: bool,
    field: InterferenceField<'b>,
    nodes: u64,
    aborted: bool,
    best_value: f64,
    best: Allocation,
}

impl<'a> AllocationSearch<'a> {
    /// Creates a search over the given problem.
    pub fn new(problem: &'a Problem, budget: Budget) -> Self {
        Self { problem, budget, allow_unallocated: true }
    }

    /// Runs the search; returns the best allocation found, its total rate
    /// (MB/s summed over users), and statistics.
    pub fn run(&self) -> (Allocation, f64, SearchStats) {
        let m = self.problem.scenario.num_users();
        let mut state = SearchState {
            problem: self.problem,
            budget: self.budget,
            allow_unallocated: self.allow_unallocated,
            field: self.problem.field(),
            nodes: 0,
            aborted: false,
            best_value: f64::NEG_INFINITY,
            best: Allocation::unallocated(m),
        };
        state.dfs(0, 0.0);
        let stats = SearchStats { nodes: state.nodes, proved_optimal: !state.aborted };
        let value = if state.best_value.is_finite() { state.best_value } else { 0.0 };
        (state.best, value, stats)
    }
}

impl SearchState<'_, '_> {
    /// The sum of the *current* rates of users allocated so far. Recomputed
    /// from the field; every allocated user's rate only shrinks as deeper
    /// levels add interference, so this sum is an upper bound on their final
    /// contribution.
    fn allocated_rate_sum(&self, upto_level: usize) -> f64 {
        (0..upto_level).map(|j| self.field.rate(UserId::from_index(j)).value()).sum()
    }

    /// Optimistic bound on the suffix: every remaining user at its cap.
    fn suffix_cap(&self, from_level: usize) -> f64 {
        self.problem.scenario.users[from_level..].iter().map(|u| u.max_rate.value()).sum()
    }

    fn dfs(&mut self, level: usize, _parent_bound: f64) {
        if self.aborted {
            return;
        }
        self.nodes += 1;
        if self.budget.exhausted(self.nodes) {
            self.aborted = true;
            return;
        }
        let m = self.problem.scenario.num_users();
        if level == m {
            let value = self.allocated_rate_sum(m);
            if value > self.best_value {
                self.best_value = value;
                self.best = self.field.allocation().clone();
            }
            return;
        }
        // Prune: even with every remaining user at its cap we cannot beat
        // the incumbent.
        let bound = self.allocated_rate_sum(level) + self.suffix_cap(level);
        if bound <= self.best_value {
            return;
        }

        let user = UserId::from_index(level);
        // Candidate decisions, best immediate rate first.
        let mut candidates: Vec<(ServerId, ChannelIndex, f64)> = Vec::new();
        for &server in self.problem.scenario.coverage.servers_of(user) {
            for channel in self.problem.scenario.servers[server.index()].channels() {
                let r = self.field.rate_at(user, server, channel).value();
                candidates.push((server, channel, r));
            }
        }
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("rates are finite"));

        for (server, channel, _) in candidates {
            self.field.allocate(user, server, channel);
            self.dfs(level + 1, bound);
            self.field.deallocate(user);
            if self.aborted {
                return;
            }
        }
        if self.allow_unallocated || self.problem.scenario.coverage.servers_of(user).is_empty() {
            // The (0,0) branch, explored last.
            self.dfs(level + 1, bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idde_model::testkit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_problem(seed: u64) -> Problem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Problem::standard(testkit::tiny_overlap(), &mut rng)
    }

    #[test]
    fn finds_the_obvious_optimum_on_tiny() {
        // tiny_overlap: 3 users, 2 servers × 2 channels = 4 channels. The
        // optimum gives every user its own channel — everyone at cap.
        let p = tiny_problem(1);
        let (alloc, value, stats) = AllocationSearch::new(&p, Budget::unlimited()).run();
        assert!(stats.proved_optimal);
        assert_eq!(alloc.num_allocated(), 3);
        let cap_sum: f64 = p.scenario.users.iter().map(|u| u.max_rate.value()).sum();
        assert!((value - cap_sum).abs() < 1e-6, "value = {value}, caps = {cap_sum}");
        // No two users share a (server, channel).
        let mut seen = std::collections::HashSet::new();
        for (_, d) in alloc.iter() {
            assert!(seen.insert(d.expect("allocated")));
        }
    }

    #[test]
    fn beats_or_matches_any_single_fixed_profile() {
        let p = tiny_problem(2);
        let (_, value, stats) = AllocationSearch::new(&p, Budget::unlimited()).run();
        assert!(stats.proved_optimal);
        // Compare against the all-on-one-channel profile.
        let mut field = p.field();
        for u in p.scenario.user_ids() {
            field.allocate(u, ServerId(0), ChannelIndex(0));
        }
        let packed: f64 = p.scenario.user_ids().map(|u| field.rate(u).value()).sum();
        assert!(value >= packed - 1e-9);
    }

    #[test]
    fn budget_exhaustion_still_returns_a_feasible_incumbent() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let scenario = idde_eua_fixture(&mut rng);
        let p = Problem::standard(scenario, &mut rng);
        let (alloc, value, stats) = AllocationSearch::new(&p, Budget::with_node_limit(2_000)).run();
        assert!(!stats.proved_optimal);
        assert!(value > 0.0);
        assert!(alloc.respects_coverage(&p.scenario));
        // The greedy-first dive allocates everyone it can.
        assert!(alloc.num_allocated() > 0);
    }

    /// A mid-size random scenario without dragging idde-eua into the dep
    /// graph: a 3×3 server grid with 24 users sprinkled around.
    fn idde_eua_fixture(rng: &mut ChaCha8Rng) -> idde_model::Scenario {
        use idde_model::*;
        use rand::Rng;
        let mut b = ScenarioBuilder::new();
        for gy in 0..3 {
            for gx in 0..3 {
                b.server(
                    Point::new(gx as f64 * 250.0, gy as f64 * 250.0),
                    260.0,
                    2,
                    MegaBytesPerSec(200.0),
                    MegaBytes(100.0),
                );
            }
        }
        let mut users = Vec::new();
        for _ in 0..24 {
            users.push(b.user(
                Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)),
                Watts(rng.gen_range(1.0..5.0)),
                MegaBytesPerSec(200.0),
            ));
        }
        let d = b.data(MegaBytes(30.0));
        for u in users {
            b.request(u, d);
        }
        b.build().unwrap()
    }

    #[test]
    fn forbidding_unallocated_still_finds_the_tiny_optimum() {
        let p = tiny_problem(5);
        let mut search = AllocationSearch::new(&p, Budget::unlimited());
        search.allow_unallocated = false;
        let (alloc, value, stats) = search.run();
        assert!(stats.proved_optimal);
        assert_eq!(alloc.num_allocated(), 3, "every user must be placed");
        // tiny_overlap has enough channels that the unconstrained optimum
        // allocates everyone anyway, so the two variants agree.
        let (_, unconstrained, _) = AllocationSearch::new(&p, Budget::unlimited()).run();
        assert!((value - unconstrained).abs() < 1e-6);
    }

    #[test]
    fn deeper_budgets_never_worsen_the_incumbent() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let scenario = idde_eua_fixture(&mut rng);
        let p = Problem::standard(scenario, &mut rng);
        let mut last = f64::NEG_INFINITY;
        for nodes in [64u64, 256, 1024, 4096] {
            let (_, value, _) = AllocationSearch::new(&p, Budget::with_node_limit(nodes)).run();
            assert!(value >= last - 1e-9, "more nodes worsened the incumbent: {last} → {value}");
            last = value;
        }
    }

    #[test]
    fn exhaustive_agreement_on_degenerate() {
        // One covered user, one uncovered: optimum allocates the covered
        // one; total = its cap.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let p = Problem::standard(testkit::degenerate(), &mut rng);
        let (alloc, value, stats) = AllocationSearch::new(&p, Budget::unlimited()).run();
        assert!(stats.proved_optimal);
        assert_eq!(alloc.num_allocated(), 1);
        assert!((value - 200.0).abs() < 1e-6);
    }
}
