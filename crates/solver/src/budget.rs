//! Search budgets and statistics.

use std::time::{Duration, Instant};

/// An anytime search budget: wall-clock deadline and/or node limit.
///
/// The paper's IDDE-IP limits CP Optimizer to 100 seconds of search; the
/// same role is played here by [`Budget::with_deadline`]. Budgets are
/// checked coarsely (every few hundred nodes) so the `Instant::now()` cost
/// stays off the hot path.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    node_limit: Option<u64>,
}

impl Budget {
    /// An unlimited budget — the search runs to proved optimality. Only
    /// sensible for tiny instances and tests.
    pub fn unlimited() -> Self {
        Self { deadline: None, node_limit: None }
    }

    /// Budget that expires `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        Self { deadline: Some(Instant::now() + limit), node_limit: None }
    }

    /// Budget limited to a number of search nodes (deterministic across
    /// machines, used by reproducible tests).
    pub fn with_node_limit(nodes: u64) -> Self {
        Self { deadline: None, node_limit: Some(nodes) }
    }

    /// Budget with both limits.
    pub fn new(limit: Duration, nodes: u64) -> Self {
        Self { deadline: Some(Instant::now() + limit), node_limit: Some(nodes) }
    }

    /// Whether the budget is exhausted after `nodes` explored nodes.
    #[inline]
    pub fn exhausted(&self, nodes: u64) -> bool {
        if let Some(limit) = self.node_limit {
            if nodes >= limit {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            // Check the clock only every 256 nodes.
            if nodes.is_multiple_of(256) && Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

/// Statistics of one branch-and-bound run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes explored.
    pub nodes: u64,
    /// `true` when the search space was exhausted, i.e. the returned
    /// incumbent is a certified optimum; `false` when the budget ran out.
    pub proved_optimal: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(0));
        assert!(!b.exhausted(u64::MAX - 1));
    }

    #[test]
    fn node_limit_exhausts() {
        let b = Budget::with_node_limit(100);
        assert!(!b.exhausted(99));
        assert!(b.exhausted(100));
        assert!(b.exhausted(101));
    }

    #[test]
    fn deadline_exhausts() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        // Checked only on multiples of 256.
        assert!(!b.exhausted(1));
        assert!(b.exhausted(256));
    }
}
