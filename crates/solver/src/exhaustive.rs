//! Brute-force ground truth for tiny instances.
//!
//! Enumerates *every* feasible allocation profile and/or delivery profile
//! and evaluates them with the public metric code — no bounds, no pruning,
//! no shared machinery with the branch-and-bound searches, which makes it a
//! genuinely independent differential-testing oracle. Exponential, of
//! course: guard rails refuse instances whose decision space exceeds
//! `max_states`.

use idde_core::{Problem, Strategy};
use idde_model::{Allocation, ChannelIndex, DataId, Placement, ServerId};
use idde_radio::InterferenceField;

/// Exhaustive enumeration oracle.
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveSolver {
    /// Refuse to enumerate more states than this (default 2_000_000).
    pub max_states: u128,
}

impl Default for ExhaustiveSolver {
    fn default() -> Self {
        Self { max_states: 2_000_000 }
    }
}

impl ExhaustiveSolver {
    /// Number of allocation profiles of the instance
    /// (`Π_j (|V_j|·|C| + 1)`).
    pub fn allocation_space(problem: &Problem) -> u128 {
        let scenario = &problem.scenario;
        scenario
            .user_ids()
            .map(|u| {
                let mut options = 1u128; // the (0,0) decision
                for &s in scenario.coverage.servers_of(u) {
                    options += scenario.servers[s.index()].num_channels as u128;
                }
                options
            })
            .product()
    }

    /// Number of delivery profiles ignoring storage (`2^(N·K)`).
    pub fn placement_space(problem: &Problem) -> u128 {
        let bits = problem.scenario.num_servers() * problem.scenario.num_data();
        if bits >= 127 {
            u128::MAX
        } else {
            1u128 << bits
        }
    }

    /// The optimal allocation for Objective #1 (max total rate). Returns
    /// `None` when the space exceeds `max_states`.
    pub fn best_allocation(&self, problem: &Problem) -> Option<(Allocation, f64)> {
        if Self::allocation_space(problem) > self.max_states {
            return None;
        }
        let scenario = &problem.scenario;
        // Per-user option lists (None = unallocated).
        let options: Vec<Vec<Option<(ServerId, ChannelIndex)>>> = scenario
            .user_ids()
            .map(|u| {
                let mut v: Vec<Option<(ServerId, ChannelIndex)>> = vec![None];
                for &s in scenario.coverage.servers_of(u) {
                    for c in scenario.servers[s.index()].channels() {
                        v.push(Some((s, c)));
                    }
                }
                v
            })
            .collect();
        let mut indices = vec![0usize; options.len()];
        let mut best: Option<(Allocation, f64)> = None;
        loop {
            let alloc = Allocation::from_decisions(
                indices.iter().zip(&options).map(|(&i, opts)| opts[i]).collect(),
            );
            let field = InterferenceField::from_allocation(&problem.radio, scenario, &alloc);
            let value: f64 = scenario.user_ids().map(|u| field.rate(u).value()).sum();
            if best.as_ref().is_none_or(|(_, b)| value > *b) {
                best = Some((alloc, value));
            }
            // Odometer increment.
            let mut level = 0;
            loop {
                if level == indices.len() {
                    return best;
                }
                indices[level] += 1;
                if indices[level] < options[level].len() {
                    break;
                }
                indices[level] = 0;
                level += 1;
            }
        }
    }

    /// The optimal storage-feasible placement for Objective #2 (min total
    /// latency) given an allocation. Returns `None` when `2^(N·K)` exceeds
    /// `max_states`.
    pub fn best_placement(
        &self,
        problem: &Problem,
        allocation: &Allocation,
    ) -> Option<(Placement, f64)> {
        if Self::placement_space(problem) > self.max_states {
            return None;
        }
        let scenario = &problem.scenario;
        let n = scenario.num_servers();
        let k_total = scenario.num_data();
        let bits = n * k_total;
        let mut best: Option<(Placement, f64)> = None;
        'mask: for mask in 0u64..(1u64 << bits) {
            let mut placement = Placement::empty(n, k_total);
            for b in 0..bits {
                if mask & (1 << b) != 0 {
                    let (k, i) = (b / n, b % n);
                    let size = scenario.data[k].size;
                    placement.place(ServerId::from_index(i), DataId::from_index(k), size);
                    if placement.used(ServerId::from_index(i)).value()
                        > scenario.servers[i].storage.value() + 1e-9
                    {
                        continue 'mask; // storage-infeasible
                    }
                }
            }
            let strategy = Strategy::new(allocation.clone(), placement);
            let value = problem.total_latency(&strategy).value();
            if best.as_ref().is_none_or(|(_, b)| value < *b) {
                best = Some((strategy.placement, value));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocationSearch, Budget, PlacementSearch};
    use idde_core::IddeUGame;
    use idde_model::testkit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem(seed: u64) -> Problem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Problem::standard(testkit::tiny_overlap(), &mut rng)
    }

    #[test]
    fn spaces_are_computed_correctly() {
        let p = problem(1);
        // 3 users × (2 servers × 2 channels + 1 unallocated) = 5³.
        assert_eq!(ExhaustiveSolver::allocation_space(&p), 125);
        // 2 servers × 2 data = 4 bits.
        assert_eq!(ExhaustiveSolver::placement_space(&p), 16);
    }

    #[test]
    fn branch_and_bound_matches_exhaustive_allocation() {
        for seed in [1u64, 2, 3] {
            let p = problem(seed);
            let (_, bb_value, stats) = AllocationSearch::new(&p, Budget::unlimited()).run();
            assert!(stats.proved_optimal);
            let (_, ex_value) =
                ExhaustiveSolver::default().best_allocation(&p).expect("tiny space");
            assert!(
                (bb_value - ex_value).abs() < 1e-6,
                "seed {seed}: B&B {bb_value} vs exhaustive {ex_value}"
            );
        }
    }

    #[test]
    fn branch_and_bound_matches_exhaustive_placement() {
        for seed in [1u64, 2, 3] {
            let p = problem(seed);
            let alloc = IddeUGame::default().run(&p).field.into_allocation();
            let (_, bb_value, stats) = PlacementSearch::new(&p, &alloc, Budget::unlimited()).run();
            assert!(stats.proved_optimal);
            let (_, ex_value) =
                ExhaustiveSolver::default().best_placement(&p, &alloc).expect("tiny space");
            assert!(
                (bb_value - ex_value).abs() < 1e-6,
                "seed {seed}: B&B {bb_value} vs exhaustive {ex_value}"
            );
        }
    }

    #[test]
    fn oversized_spaces_are_refused() {
        let p = problem(1);
        let solver = ExhaustiveSolver { max_states: 10 };
        assert!(solver.best_allocation(&p).is_none());
        assert!(solver.best_placement(&p, &Allocation::unallocated(3)).is_none());
    }
}
