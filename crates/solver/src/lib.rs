//! # idde-solver — exact and anytime solvers for the IDDE decision space
//!
//! The paper's strongest baseline, **IDDE-IP**, feeds the §2.3 model to IBM
//! CPLEX's CP Optimizer with a 100-second search limit. CPLEX is proprietary
//! and unavailable here, so this crate implements the substitute documented
//! in `DESIGN.md`: a from-scratch **anytime branch-and-bound** over the same
//! joint decision space,
//!
//! * [`AllocationSearch`] — maximises the total data rate `Σ_j R_j`
//!   (Objective #1) over all user allocation profiles, with the admissible
//!   bound *current rate sum + `R_max` per unassigned user* (rates only fall
//!   as more users are packed in, so the partial sum never underestimates);
//! * [`PlacementSearch`] — minimises the total delivery latency `L(σ)`
//!   (Objective #2) over all storage-feasible delivery profiles, with an
//!   exact suffix-relaxation lower bound;
//! * [`ExhaustiveSolver`] — brute force over tiny instances, the ground
//!   truth oracle for tests (and for measuring IDDE-G's optimality gap);
//! * [`LocalSearch`] — random-restart steepest-ascent hill climbing on the
//!   global rate objective, the metaheuristic anchor that prices the
//!   decentralisation of the IDDE-U game;
//! * [`Budget`] — wall-clock/node budgets making every search anytime: it
//!   always returns the best incumbent found, plus whether optimality was
//!   *proved*.
//!
//! Like CP Optimizer, the searches know nothing about the IDDE-G heuristic;
//! given a short budget they return honestly solver-ish incumbents, given
//! enough budget they return certified optima.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocation;
pub mod budget;
pub mod exhaustive;
pub mod local_search;
pub mod placement;

pub use allocation::AllocationSearch;
pub use budget::{Budget, SearchStats};
pub use exhaustive::ExhaustiveSolver;
pub use local_search::{LocalSearch, LocalSearchConfig};
pub use placement::PlacementSearch;
