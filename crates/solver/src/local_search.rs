//! Random-restart hill climbing over allocation profiles.
//!
//! A third point between the IDDE-U game (selfish best responses) and the
//! branch-and-bound (exact but exponential): centralized hill climbing on
//! the *global* objective `Σ_j R_j`. Each step evaluates single-user moves
//! and commits the one with the largest total-rate gain; restarts from
//! random feasible profiles escape local optima. This is the standard
//! "metaheuristic baseline" of the edge-allocation literature and serves
//! two roles here:
//!
//! * a correctness cross-check — on tiny instances it must land on the
//!   same optimum as the exhaustive solver most of the time;
//! * an ablation anchor — it optimises the global objective directly, so
//!   the gap between it and the Nash equilibrium of the IDDE-U game is a
//!   measured price of decentralisation.

use idde_core::Problem;
use idde_model::{Allocation, ChannelIndex, ServerId, UserId};
use idde_radio::InterferenceField;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::budget::{Budget, SearchStats};

/// Configuration of the hill climber.
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchConfig {
    /// Random restarts (the first start is always the greedy fill).
    pub restarts: usize,
    /// RNG seed for the random starts.
    pub seed: u64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self { restarts: 4, seed: 0 }
    }
}

/// Random-restart steepest-ascent hill climbing maximising `Σ_j R_j`.
#[derive(Debug)]
pub struct LocalSearch<'a> {
    problem: &'a Problem,
    budget: Budget,
    config: LocalSearchConfig,
}

impl<'a> LocalSearch<'a> {
    /// Creates a hill climber over the problem.
    pub fn new(problem: &'a Problem, budget: Budget, config: LocalSearchConfig) -> Self {
        Self { problem, budget, config }
    }

    /// Runs the search; returns the best allocation, its total rate and
    /// statistics (`nodes` counts evaluated candidate moves).
    pub fn run(&self) -> (Allocation, f64, SearchStats) {
        let scenario = &self.problem.scenario;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut nodes = 0u64;
        let mut best: Option<(Allocation, f64)> = None;

        'restarts: for restart in 0..=self.config.restarts {
            let mut field = self.problem.field();
            // Start profile: greedy fill on the first pass, random after.
            for user in scenario.user_ids() {
                let servers = scenario.coverage.servers_of(user);
                if servers.is_empty() {
                    continue;
                }
                let (server, channel) = if restart == 0 {
                    // Greedy: the immediately best decision.
                    let mut choice = None;
                    for &s in servers {
                        for c in scenario.servers[s.index()].channels() {
                            let r = field.rate_at(user, s, c).value();
                            if choice.is_none_or(|(_, _, b)| r > b) {
                                choice = Some((s, c, r));
                            }
                        }
                    }
                    let (s, c, _) = choice.expect("covered users have decisions");
                    (s, c)
                } else {
                    let s = servers[rng.gen_range(0..servers.len())];
                    let c =
                        ChannelIndex(rng.gen_range(0..scenario.servers[s.index()].num_channels));
                    (s, c)
                };
                field.allocate(user, server, channel);
            }

            // Steepest ascent on the global rate.
            let mut current = total_rate(&field);
            loop {
                let mut best_move: Option<(UserId, ServerId, ChannelIndex, f64)> = None;
                for user in scenario.user_ids() {
                    let Some(old) = field.allocation().decision(user) else { continue };
                    for &server in scenario.coverage.servers_of(user) {
                        for channel in scenario.servers[server.index()].channels() {
                            if (server, channel) == old {
                                continue;
                            }
                            nodes += 1;
                            if self.budget.exhausted(nodes) {
                                break 'restarts;
                            }
                            field.allocate(user, server, channel);
                            let value = total_rate(&field);
                            field.allocate(user, old.0, old.1);
                            if value > current + 1e-9
                                && best_move.is_none_or(|(_, _, _, b)| value > b)
                            {
                                best_move = Some((user, server, channel, value));
                            }
                        }
                    }
                }
                match best_move {
                    Some((user, server, channel, value)) => {
                        field.allocate(user, server, channel);
                        current = value;
                    }
                    None => break, // local optimum
                }
            }
            if best.as_ref().is_none_or(|&(_, b)| current > b) {
                best = Some((field.allocation().clone(), current));
            }
        }

        let (allocation, value) =
            best.unwrap_or_else(|| (Allocation::unallocated(scenario.num_users()), 0.0));
        (allocation, value, SearchStats { nodes, proved_optimal: false })
    }
}

fn total_rate(field: &InterferenceField<'_>) -> f64 {
    field.scenario().user_ids().map(|u| field.rate(u).value()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExhaustiveSolver;
    use idde_core::IddeUGame;
    use idde_model::testkit;

    fn tiny_problem(seed: u64) -> Problem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Problem::standard(testkit::tiny_overlap(), &mut rng)
    }

    #[test]
    fn finds_the_exhaustive_optimum_on_tiny_instances() {
        for seed in [1u64, 2, 3] {
            let p = tiny_problem(seed);
            let (_, value, _) =
                LocalSearch::new(&p, Budget::unlimited(), LocalSearchConfig::default()).run();
            let (_, optimal) = ExhaustiveSolver::default().best_allocation(&p).expect("tiny space");
            // tiny_overlap's landscape has no bad local optima: everyone on
            // their own channel.
            assert!((value - optimal).abs() < 1e-6, "seed {seed}: {value} vs {optimal}");
        }
    }

    #[test]
    fn centralized_climbing_never_loses_to_the_nash_equilibrium_by_much() {
        // The price of decentralisation is bounded: across fig2 instances
        // the climber's global objective is at least the game's.
        for seed in [4u64, 5, 6] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let p = Problem::standard(testkit::fig2_example(), &mut rng);
            let (_, climbed, _) =
                LocalSearch::new(&p, Budget::unlimited(), LocalSearchConfig::default()).run();
            let outcome = IddeUGame::default().run(&p);
            let nash: f64 = p.scenario.user_ids().map(|u| outcome.field.rate(u).value()).sum();
            assert!(
                climbed >= nash * 0.95 - 1e-9,
                "seed {seed}: climber {climbed} far below the equilibrium {nash}"
            );
        }
    }

    #[test]
    fn respects_budget_and_coverage() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let p = Problem::standard(testkit::fig2_example(), &mut rng);
        let (alloc, _, stats) =
            LocalSearch::new(&p, Budget::with_node_limit(50), LocalSearchConfig::default()).run();
        assert!(stats.nodes <= 50);
        assert!(alloc.respects_coverage(&p.scenario));
    }

    #[test]
    fn restarts_are_deterministic_per_seed() {
        let p = tiny_problem(8);
        let cfg = LocalSearchConfig { restarts: 3, seed: 9 };
        let a = LocalSearch::new(&p, Budget::unlimited(), cfg).run();
        let b = LocalSearch::new(&p, Budget::unlimited(), cfg).run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
