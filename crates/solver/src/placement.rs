//! Branch-and-bound over data delivery profiles (Objective #2).
//!
//! Decisions `σ_{i,k}` are linearised data-major — all servers of `d_0`,
//! then all servers of `d_1`, … — and explored include-first/exclude-second
//! depth first. The lower bound at a node is exact over the prefix and
//! relaxed over the suffix:
//!
//! ```text
//! LB = Σ_{requests of data with no remaining candidates} cur(r)
//!    + Σ_{other requests}                                min(cur(r), best_any(r))
//! ```
//!
//! where `best_any(r)` is the latency of serving the request from the best
//! server in the whole system, storage ignored — a valid relaxation. Thanks
//! to the data-major order, once the search passes data `k`'s block, the
//! latencies of `d_k`'s requests are final and the bound tightens exactly.

use idde_core::Problem;
use idde_model::{Allocation, DataId, Placement, ServerId};

use crate::budget::{Budget, SearchStats};

/// Anytime branch-and-bound minimising the total delivery latency `L(σ)`
/// for a fixed allocation profile.
#[derive(Debug)]
pub struct PlacementSearch<'a> {
    problem: &'a Problem,
    allocation: &'a Allocation,
    budget: Budget,
}

struct Node {
    /// Per-request current latency, grouped by data (parallel to `targets`).
    cur: Vec<Vec<f64>>,
}

struct SearchState<'a> {
    problem: &'a Problem,
    budget: Budget,
    /// Serving server of each grouped request, by data.
    targets: Vec<Vec<ServerId>>,
    /// `best_any[k][r]`: latency of request `r` of data `k` from the best
    /// possible edge server (or the cloud), storage ignored.
    best_any: Vec<Vec<f64>>,
    node: Node,
    placement: Placement,
    used: Vec<f64>,
    nodes: u64,
    aborted: bool,
    best_value: f64,
    best: Placement,
    /// Latency total of requests from unallocated (cloud-pinned) users.
    pinned: f64,
}

impl<'a> PlacementSearch<'a> {
    /// Creates a search for the given problem and allocation profile.
    pub fn new(problem: &'a Problem, allocation: &'a Allocation, budget: Budget) -> Self {
        Self { problem, allocation, budget }
    }

    /// Runs the search; returns the best placement found, its total latency
    /// (ms, including cloud-pinned requests), and statistics.
    pub fn run(&self) -> (Placement, f64, SearchStats) {
        let scenario = &self.problem.scenario;
        let topology = &self.problem.topology;
        let n = scenario.num_servers();
        let k_total = scenario.num_data();

        let mut pinned = 0.0;
        let mut targets: Vec<Vec<ServerId>> = vec![Vec::new(); k_total];
        for (user, data) in scenario.requests.pairs() {
            match self.allocation.server_of(user) {
                Some(t) => targets[data.index()].push(t),
                None => pinned += topology.cloud_latency(scenario.data[data.index()].size).value(),
            }
        }
        let cur: Vec<Vec<f64>> = (0..k_total)
            .map(|k| {
                let cloud = topology.cloud_latency(scenario.data[k].size).value();
                vec![cloud; targets[k].len()]
            })
            .collect();
        // `best_any` is the storage-ignored relaxation: O(K·R·N) independent
        // pure lookups, by far the heaviest part of root setup — fan the
        // per-data columns out over idde-par workers (order-preserving, so
        // the bound and hence the search trajectory stay bit-identical).
        let data_ids: Vec<usize> = (0..k_total).collect();
        let best_any: Vec<Vec<f64>> = idde_par::par_map(&data_ids, |&k| {
            let size = scenario.data[k].size;
            targets[k]
                .iter()
                .map(|&t| {
                    let mut best = topology.cloud_latency(size).value();
                    for i in 0..n {
                        best = best
                            .min(topology.edge_latency(size, ServerId::from_index(i), t).value());
                    }
                    best
                })
                .collect()
        });

        let mut state = SearchState {
            problem: self.problem,
            budget: self.budget,
            targets,
            best_any,
            node: Node { cur },
            placement: Placement::empty(n, k_total),
            used: vec![0.0; n],
            nodes: 0,
            aborted: false,
            best_value: f64::INFINITY,
            best: Placement::empty(n, k_total),
            pinned,
        };
        let all_cloud = state.current_total();
        state.dfs(0);
        let stats = SearchStats { nodes: state.nodes, proved_optimal: !state.aborted };
        // If the budget died before the first leaf, the incumbent is the
        // empty profile, whose total is the all-cloud latency.
        let value = if state.best_value.is_finite() {
            state.best_value + state.pinned
        } else {
            all_cloud + state.pinned
        };
        (state.best, value, stats)
    }
}

impl SearchState<'_> {
    fn num_decisions(&self) -> usize {
        self.problem.scenario.num_servers() * self.problem.scenario.num_data()
    }

    /// Decision `idx` (data-major) → `(data, server)`.
    fn decode(&self, idx: usize) -> (usize, usize) {
        let n = self.problem.scenario.num_servers();
        (idx / n, idx % n)
    }

    /// Lower bound: exact prefix + relaxed suffix (see module docs).
    fn lower_bound(&self, next_idx: usize) -> f64 {
        let (k_frontier, _) = if next_idx >= self.num_decisions() {
            (self.problem.scenario.num_data(), 0)
        } else {
            self.decode(next_idx)
        };
        let mut lb = 0.0;
        for k in 0..self.problem.scenario.num_data() {
            let row = &self.node.cur[k];
            if k < k_frontier {
                lb += row.iter().sum::<f64>();
            } else {
                lb += row.iter().zip(&self.best_any[k]).map(|(&c, &b)| c.min(b)).sum::<f64>();
            }
        }
        lb
    }

    fn current_total(&self) -> f64 {
        self.node.cur.iter().flatten().sum()
    }

    fn dfs(&mut self, idx: usize) {
        if self.aborted {
            return;
        }
        self.nodes += 1;
        if self.budget.exhausted(self.nodes) {
            self.aborted = true;
            return;
        }
        if idx == self.num_decisions() {
            let value = self.current_total();
            if value < self.best_value {
                self.best_value = value;
                self.best = self.placement.clone();
            }
            return;
        }
        if self.lower_bound(idx) >= self.best_value {
            return;
        }
        let (k, i) = self.decode(idx);
        let scenario = &self.problem.scenario;
        let size = scenario.data[k].size;
        let server = ServerId::from_index(i);

        // Include branch (if storage-feasible).
        if self.used[i] + size.value() <= scenario.servers[i].storage.value() + 1e-9 {
            // Apply: update cur for requests of d_k, remember the deltas.
            let mut undo: Vec<(usize, f64)> = Vec::new();
            for (r, &target) in self.targets[k].iter().enumerate() {
                let via = self.problem.topology.edge_latency(size, server, target).value();
                if via < self.node.cur[k][r] {
                    undo.push((r, self.node.cur[k][r]));
                    self.node.cur[k][r] = via;
                }
            }
            self.used[i] += size.value();
            self.placement.place(server, DataId::from_index(k), size);
            self.dfs(idx + 1);
            self.placement.remove(server, DataId::from_index(k), size);
            self.used[i] -= size.value();
            for (r, old) in undo {
                self.node.cur[k][r] = old;
            }
            if self.aborted {
                return;
            }
        }
        // Exclude branch.
        self.dfs(idx + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idde_core::{GreedyDelivery, IddeUGame, Strategy};
    use idde_model::testkit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem(seed: u64) -> Problem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Problem::standard(testkit::tiny_overlap(), &mut rng)
    }

    fn solved_alloc(p: &Problem) -> Allocation {
        IddeUGame::default().run(p).field.into_allocation()
    }

    #[test]
    fn optimal_never_worse_than_greedy() {
        for seed in [1u64, 2, 3, 4, 5] {
            let p = problem(seed);
            let alloc = solved_alloc(&p);
            let greedy = GreedyDelivery::default().run(&p, &alloc);
            let (placement, value, stats) =
                PlacementSearch::new(&p, &alloc, Budget::unlimited()).run();
            assert!(stats.proved_optimal, "tiny instance must be provable");
            assert!(
                value <= greedy.final_total_latency.value() + 1e-6,
                "seed {seed}: optimal {value} > greedy {}",
                greedy.final_total_latency.value()
            );
            let strategy = Strategy::new(alloc, placement);
            assert!(strategy.placement.respects_storage(&p.scenario));
            // The evaluator agrees with the search's internal accounting.
            assert!((p.total_latency(&strategy).value() - value).abs() < 1e-6);
        }
    }

    #[test]
    fn greedy_achieves_theorem6_bound_on_tiny() {
        // Theorem 6/7: greedy's latency *reduction* is at least (e-1)/2e of
        // the optimal reduction (storage-normalised worst case). On these
        // tiny instances greedy is near-optimal; assert the formal bound.
        for seed in [1u64, 7, 11] {
            let p = problem(seed);
            let alloc = solved_alloc(&p);
            let greedy = GreedyDelivery::default().run(&p, &alloc);
            let (_, opt_value, stats) = PlacementSearch::new(&p, &alloc, Budget::unlimited()).run();
            assert!(stats.proved_optimal);
            let phi = greedy.initial_total_latency.value();
            let greedy_reduction = greedy.latency_reduction().value();
            let opt_reduction = phi - (opt_value - 0.0);
            let bound = (std::f64::consts::E - 1.0) / (2.0 * std::f64::consts::E);
            assert!(
                greedy_reduction + 1e-9 >= bound * opt_reduction,
                "seed {seed}: greedy ΔL = {greedy_reduction}, optimal ΔL = {opt_reduction}"
            );
        }
    }

    #[test]
    fn empty_allocation_means_cloud_total() {
        let p = problem(9);
        let alloc = Allocation::unallocated(p.scenario.num_users());
        let (placement, value, stats) = PlacementSearch::new(&p, &alloc, Budget::unlimited()).run();
        assert!(stats.proved_optimal);
        // No placement can change anything (ties are broken arbitrarily, so
        // the returned profile may contain inconsequential replicas, like
        // any solver's).
        assert!((value - p.all_cloud_latency().value()).abs() < 1e-9);
        let strategy = Strategy::new(alloc, placement);
        assert!(strategy.placement.respects_storage(&p.scenario));
    }

    #[test]
    fn root_lower_bound_is_admissible() {
        // The LB at the root must never exceed the true optimum — otherwise
        // pruning could cut the optimal branch.
        for seed in [2u64, 4, 8] {
            let p = problem(seed);
            let alloc = solved_alloc(&p);
            let (_, optimal, stats) = PlacementSearch::new(&p, &alloc, Budget::unlimited()).run();
            assert!(stats.proved_optimal);
            // Rebuild the search state just to read the root bound: run a
            // 1-node search, whose incumbent is untouched, and compare the
            // reported all-cloud fallback against the optimum.
            let (_, fallback, _) =
                PlacementSearch::new(&p, &alloc, Budget::with_node_limit(1)).run();
            assert!(optimal <= fallback + 1e-9, "optimum must not exceed the empty profile");
        }
    }

    #[test]
    fn deeper_budgets_never_worsen_the_incumbent() {
        let p = problem(12);
        let alloc = solved_alloc(&p);
        let mut last = f64::INFINITY;
        for nodes in [2u64, 8, 32, 128, 1024, 100_000] {
            let (_, value, _) =
                PlacementSearch::new(&p, &alloc, Budget::with_node_limit(nodes)).run();
            assert!(value <= last + 1e-9, "more nodes worsened the incumbent: {last} → {value}");
            last = value;
        }
    }

    #[test]
    fn budget_exhaustion_returns_feasible_incumbent() {
        let p = problem(10);
        let alloc = solved_alloc(&p);
        let (placement, value, stats) =
            PlacementSearch::new(&p, &alloc, Budget::with_node_limit(8)).run();
        assert!(!stats.proved_optimal);
        assert!(value.is_finite());
        let strategy = Strategy::new(alloc, placement);
        assert!(strategy.placement.respects_storage(&p.scenario));
    }
}
