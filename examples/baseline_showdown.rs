//! Deep-dive comparison of the five approaches on one instance: beyond the
//! two headline metrics, this prints *why* each baseline loses — channel
//! balance, replica diversity, hit rates and per-approach delivery source
//! breakdowns.
//!
//! ```sh
//! cargo run --release --example baseline_showdown
//! ```

use std::collections::HashSet;
use std::time::Duration;

use idde::prelude::*;
use idde_baselines::standard_panel;
use idde_radio::InterferenceField;

fn main() {
    let mut rng = idde::seeded_rng(77);
    let scenario = SyntheticEua::default().sample(30, 200, 5, &mut rng);
    let problem = Problem::standard(scenario, &mut rng);
    println!(
        "{:>8} {:>9} {:>9} {:>7} {:>9} {:>8} {:>9} {:>9}",
        "approach", "R_avg", "L_avg", "local%", "neighb%", "cloud%", "replicas", "distinct"
    );

    for approach in standard_panel(Duration::from_millis(300)) {
        let strategy = approach.solve_seeded(&problem, 3);
        let metrics = problem.evaluate(&strategy);

        // Delivery source breakdown.
        let mut local = 0usize;
        let mut neighbour = 0usize;
        let mut cloud = 0usize;
        for (user, data) in problem.scenario.requests.pairs() {
            let size = problem.scenario.data[data.index()].size;
            match strategy.allocation.server_of(user) {
                None => cloud += 1,
                Some(target) => {
                    let (_, source) =
                        problem.topology.delivery_latency(&strategy.placement, data, size, target);
                    match source {
                        idde::net::DeliverySource::Cloud => cloud += 1,
                        idde::net::DeliverySource::Edge(origin) if origin == target => local += 1,
                        idde::net::DeliverySource::Edge(_) => neighbour += 1,
                    }
                }
            }
        }
        let total = problem.scenario.requests.total_requests().max(1) as f64;

        // Replica diversity: how many *distinct* (server, data) placements
        // vs how many distinct data items have at least one replica.
        let distinct_items: HashSet<_> = problem
            .scenario
            .server_ids()
            .flat_map(|s| strategy.placement.data_on(s).collect::<Vec<_>>())
            .collect();

        println!(
            "{:>8} {:>9.2} {:>9.3} {:>6.0}% {:>8.0}% {:>7.0}% {:>9} {:>9}",
            approach.name(),
            metrics.average_data_rate.value(),
            metrics.average_delivery_latency.value(),
            local as f64 / total * 100.0,
            neighbour as f64 / total * 100.0,
            cloud as f64 / total * 100.0,
            metrics.placements,
            distinct_items.len(),
        );

        // One structural witness per baseline pathology:
        if approach.name() == "SAA" {
            // SAA's random allocation leaves channels badly unbalanced.
            let field = InterferenceField::from_allocation(
                &problem.radio,
                &problem.scenario,
                &strategy.allocation,
            );
            let mut worst_gap = 0.0f64;
            for server in problem.scenario.server_ids() {
                let powers: Vec<f64> = problem.scenario.servers[server.index()]
                    .channels()
                    .map(|x| field.channel_power(server, x))
                    .collect();
                let max = powers.iter().copied().fold(0.0, f64::max);
                let min = powers.iter().copied().fold(f64::INFINITY, f64::min);
                worst_gap = worst_gap.max(max - min);
            }
            println!("           ↳ SAA's worst per-server channel power gap: {worst_gap:.1} W");
        }
    }

    println!(
        "\nReading guide: IDDE-G pairs the best local% with the widest distinct coverage;\n\
         CDP replicates the same hot items everywhere (high replicas, low distinct);\n\
         SAA's random channels torch its rate column."
    );
}
