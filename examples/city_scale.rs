//! City-scale showdown: every §4.1 approach on one realistic instance.
//!
//! Samples the paper's default experiment point (N = 30 edge servers,
//! M = 200 users, K = 5 data items) from the synthetic Melbourne-CBD-like
//! population, runs the full five-approach panel and prints a side-by-side
//! comparison of the three §4.4 metrics.
//!
//! ```sh
//! cargo run --release --example city_scale
//! ```

use std::time::{Duration, Instant};

use idde::prelude::*;
use idde_baselines::standard_panel;

fn main() {
    let mut rng = idde::seeded_rng(7);
    let scenario = SyntheticEua::default().sample(30, 200, 5, &mut rng);
    let problem = Problem::standard(scenario, &mut rng);
    let all_cloud =
        problem.all_cloud_latency().value() / problem.scenario.requests.total_requests() as f64;

    println!(
        "instance: N={} M={} K={} | {} requests | all-cloud L_avg would be {all_cloud:.1} ms\n",
        problem.scenario.num_servers(),
        problem.scenario.num_users(),
        problem.scenario.num_data(),
        problem.scenario.requests.total_requests(),
    );
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "approach", "R_avg (MB/s)", "L_avg (ms)", "time", "replicas", "cloud %"
    );

    for approach in standard_panel(Duration::from_millis(1000)) {
        let t0 = Instant::now();
        let strategy = approach.solve_seeded(&problem, 1);
        let elapsed = t0.elapsed();
        assert!(problem.is_feasible(&strategy), "{} must be feasible", approach.name());
        let m = problem.evaluate(&strategy);
        println!(
            "{:>8} {:>14.2} {:>12.3} {:>12?} {:>10} {:>9.0}%",
            approach.name(),
            m.average_data_rate.value(),
            m.average_delivery_latency.value(),
            elapsed,
            m.placements,
            m.cloud_fraction() * 100.0,
        );
    }

    println!(
        "\nIDDE-G should top the rate column and floor the latency column — the paper's\n\
         headline claim — while IDDE-IP burns its whole budget for a worse strategy."
    );
}
