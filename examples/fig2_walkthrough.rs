//! A guided walkthrough of the paper's Fig. 2 running example: 4 edge
//! servers, 9 users, 4 data items, and the request pattern from the figure
//! caption. Prints the whole IDDE-G pipeline step by step — coverage sets,
//! the IDDE-U equilibrium, the greedy placements, and every request's
//! delivery path.
//!
//! ```sh
//! cargo run --release --example fig2_walkthrough
//! ```

use idde::core::{GreedyDelivery, IddeUGame, Strategy};
use idde::model::testkit;
use idde::prelude::*;

fn main() {
    let scenario = testkit::fig2_example();
    let mut rng = idde::seeded_rng(2022);
    let problem = Problem::standard(scenario, &mut rng);

    println!("== the Fig. 2 edge storage system ==");
    for server in &problem.scenario.servers {
        println!(
            "  v{} at {:?}, {} channels × {}, {:.0} MB reserved, covers users {:?}",
            server.id.0 + 1,
            server.position,
            server.num_channels,
            server.channel_bandwidth,
            server.storage.value(),
            problem
                .scenario
                .coverage
                .users_of(server.id)
                .iter()
                .map(|u| u.0 + 1)
                .collect::<Vec<_>>(),
        );
    }
    println!("\n== requests (ζ) ==");
    for data in problem.scenario.data_ids() {
        let users: Vec<u32> =
            problem.scenario.requests.of_data(data).iter().map(|u| u.0 + 1).collect();
        println!(
            "  d{} ({:.0} MB) ← users {users:?}",
            data.0 + 1,
            problem.scenario.data[data.index()].size.value()
        );
    }

    println!("\n== Phase #1: the IDDE-U game ==");
    let outcome = IddeUGame::default().run(&problem);
    println!("  converged after {} passes / {} improvement moves", outcome.passes, outcome.moves);
    for user in problem.scenario.user_ids() {
        let (server, channel) = outcome.field.allocation().decision(user).expect("all covered");
        println!(
            "  u{} → v{} channel {} (SINR {:.2e}, rate {:.1} MB/s)",
            user.0 + 1,
            server.0 + 1,
            channel.0,
            outcome.field.sinr(user).unwrap(),
            outcome.field.rate(user).value(),
        );
    }
    println!("  R_avg = {:.2} MB/s", outcome.field.average_rate().value());

    println!("\n== Phase #2: greedy data delivery ==");
    let allocation = outcome.field.into_allocation();
    let delivery = GreedyDelivery::default().run(&problem, &allocation);
    for server in problem.scenario.server_ids() {
        let items: Vec<String> =
            delivery.placement.data_on(server).map(|d| format!("d{}", d.0 + 1)).collect();
        println!(
            "  v{} stores [{}] ({:.0}/{:.0} MB used)",
            server.0 + 1,
            items.join(", "),
            delivery.placement.used(server).value(),
            problem.scenario.servers[server.index()].storage.value(),
        );
    }

    println!("\n== every request's delivery (Eq. 8) ==");
    let strategy = Strategy::new(allocation, delivery.placement.clone());
    for (user, data) in problem.scenario.requests.pairs() {
        let target = strategy.allocation.server_of(user).expect("allocated");
        let size = problem.scenario.data[data.index()].size;
        let (latency, source) =
            problem.topology.delivery_latency(&strategy.placement, data, size, target);
        let source = match source {
            idde::net::DeliverySource::Edge(origin) if origin == target => "local hit".to_string(),
            idde::net::DeliverySource::Edge(origin) => format!("from v{}", origin.0 + 1),
            idde::net::DeliverySource::Cloud => "from the cloud".to_string(),
        };
        println!("  u{} ← d{}: {:.2} ms ({source})", user.0 + 1, data.0 + 1, latency.value());
    }

    let metrics = problem.evaluate(&strategy);
    println!("\n== result ==\n  {metrics}");
    assert!(problem.is_feasible(&strategy));
    assert_eq!(metrics.allocated_users, 9);
}
