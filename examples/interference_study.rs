//! The "last mile" interference study.
//!
//! The paper's core observation (§1, §2.2) is that piling users onto the
//! same wireless channel collapses their data rates, so user allocation
//! must be interference-aware *before* any data placement happens. This
//! example makes that effect visible:
//!
//! 1. it sweeps the user count on a fixed 10-server system and prints how
//!    the average data rate degrades,
//! 2. it compares three allocation policies at each load — the IDDE-U game
//!    (full Eq. 12 benefit), the same game without cross-server awareness
//!    (DUP-G's congestion form) and SAA's random attachment,
//! 3. it prints the channel-occupancy histogram of the game's equilibrium
//!    to show how it spreads users.
//!
//! ```sh
//! cargo run --release --example interference_study
//! ```

use idde::prelude::*;
use idde_core::{BenefitModel, GameConfig, IddeUGame};
use idde_eua::{SampleConfig, SyntheticEua};
use idde_radio::InterferenceField;

fn main() {
    let population = SyntheticEua::default().generate(&mut idde::seeded_rng(5));

    println!(
        "{:>6} {:>16} {:>18} {:>16}",
        "users", "IDDE-U (MB/s)", "congestion (MB/s)", "random (MB/s)"
    );
    let mut last_full = f64::INFINITY;
    for m in [20usize, 60, 120, 200, 300] {
        let mut rng = idde::seeded_rng(1_000 + m as u64);
        let scenario = SampleConfig::paper(10, m, 3).sample(&population, &mut rng);
        let problem = Problem::standard(scenario, &mut rng);

        let full = IddeUGame::default().run(&problem).field.average_rate().value();
        let congestion =
            IddeUGame::new(GameConfig { benefit: BenefitModel::Congestion, ..Default::default() })
                .run(&problem)
                .field
                .average_rate()
                .value();
        let random = random_allocation_rate(&problem, 42);

        println!("{m:>6} {full:>16.2} {congestion:>18.2} {random:>16.2}");

        // Interference must bite: the rate falls as the system fills up.
        assert!(full <= last_full + 1e-6, "rate must degrade with load");
        last_full = full;
        // And awareness must pay: the game never loses to random chance.
        assert!(full >= random - 1e-6, "the game must beat random allocation");
    }

    // Occupancy histogram at the heaviest load.
    let mut rng = idde::seeded_rng(1_300);
    let scenario = SampleConfig::paper(10, 300, 3).sample(&population, &mut rng);
    let problem = Problem::standard(scenario, &mut rng);
    let outcome = IddeUGame::default().run(&problem);
    println!("\nchannel occupancy at M=300 (10 servers × 3 channels, occupants / watts):");
    let max_power: f64 = problem.scenario.users.iter().map(|u| u.power.value()).fold(0.0, f64::max);
    for server in problem.scenario.server_ids() {
        let channels: Vec<(usize, f64)> = problem.scenario.servers[server.index()]
            .channels()
            .map(|x| {
                (outcome.field.occupants(server, x).len(), outcome.field.channel_power(server, x))
            })
            .collect();
        let line: Vec<String> =
            channels.iter().map(|(n, w)| format!("{n:>3} / {w:5.1} W")).collect();
        println!("  server {server:>2}: [{}]", line.join(", "));
        // The game balances *interference power*, not head counts: at a
        // (guarded) equilibrium no channel can stay heavier than a sibling
        // by much more than the heaviest single user.
        let max_w = channels.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        let min_w = channels.iter().map(|&(_, w)| w).fold(f64::INFINITY, f64::min);
        assert!(
            max_w - min_w <= 3.0 * max_power + 1e-9,
            "server {server}: power gap {:.1} W is implausibly large",
            max_w - min_w
        );
    }
    println!(
        "\nno channel hoards transmit power while a sibling sits quiet — that is Phase #1's job."
    );
}

/// Average rate of a uniformly random feasible allocation (SAA's Phase #1).
fn random_allocation_rate(problem: &Problem, seed: u64) -> f64 {
    use rand::Rng;
    let mut rng = idde::seeded_rng(seed);
    let mut field = InterferenceField::new(&problem.radio, &problem.scenario);
    for user in problem.scenario.user_ids() {
        let servers = problem.scenario.coverage.servers_of(user);
        if servers.is_empty() {
            continue;
        }
        let server = servers[rng.gen_range(0..servers.len())];
        let channels = problem.scenario.servers[server.index()].num_channels;
        field.allocate(user, server, idde::model::ChannelIndex(rng.gen_range(0..channels)));
    }
    field.average_rate().value()
}
