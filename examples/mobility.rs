//! User movement and data migration — the paper's future work, running.
//!
//! Simulates 12 epochs of user mobility over one city. At each epoch the
//! vendor re-formulates its IDDE strategy two ways:
//!
//! * **cold** — Algorithm 1 from scratch, pretending the system is empty
//!   (every replica the new profile wants must be shipped);
//! * **warm** — `MobileSolver`: keep still-feasible allocations, evict
//!   replicas nobody benefits from, greedily top up — and pay migration
//!   traffic only for genuinely new replicas.
//!
//! Both are scored with the same evaluator; the point of the extension is
//! that warm re-solving keeps the latency of a fresh solve at a fraction of
//! the migration traffic and game work.
//!
//! ```sh
//! cargo run --release --example mobility
//! ```

use idde::core::{IddeG, MobileSolver, RandomWaypoint};
use idde::prelude::*;
use idde::radio::{RadioEnvironment, RadioParams};

fn main() {
    let mut rng = idde::seeded_rng(31);
    let scenario = SyntheticEua::default().sample(20, 120, 5, &mut rng);
    let mut problem = Problem::standard(scenario, &mut rng);
    let waypoint = RandomWaypoint { max_step_m: 100.0, move_probability: 0.6 };
    let solver = MobileSolver { evict_useless: true, ..Default::default() };

    let (mut strategy, _) = solver.resolve(&problem, None);
    let mut warm_migrated = 0.0;
    let mut cold_migrated = 0.0;
    let mut warm_moves = 0usize;
    let mut cold_moves = 0usize;

    println!(
        "{:>5} {:>7} {:>12} {:>12} {:>11} {:>11} {:>9}",
        "epoch", "moved", "warm L_avg", "cold L_avg", "warm mig", "cold mig", "realloc"
    );
    for epoch in 1..=12 {
        // Users walk; coverage and gains change; links stay (servers are
        // infrastructure).
        let (next_scenario, moved) = waypoint.step(&problem.scenario, &mut rng);
        let radio = RadioEnvironment::new(&next_scenario, RadioParams::paper());
        problem = Problem::new(next_scenario, radio, problem.topology.clone());

        // Warm: reuse yesterday's strategy.
        let (warm, report) = solver.resolve(&problem, Some(&strategy));
        let warm_metrics = problem.evaluate(&warm);
        warm_migrated += report.migrated.value();
        warm_moves += report.game_moves;

        // Cold: from scratch — every replica of the new profile is traffic.
        let cold = IddeG::default().solve_with_report(&problem);
        let cold_metrics = problem.evaluate(&cold.strategy);
        let cold_traffic: f64 = problem
            .scenario
            .server_ids()
            .flat_map(|s| {
                cold.strategy
                    .placement
                    .data_on(s)
                    .map(|d| problem.scenario.data[d.index()].size.value())
            })
            .sum();
        cold_migrated += cold_traffic;
        cold_moves += cold.game_moves;

        assert!(problem.is_feasible(&warm));
        println!(
            "{epoch:>5} {moved:>7} {:>12.3} {:>12.3} {:>8.0} MB {:>8.0} MB {:>9}",
            warm_metrics.average_delivery_latency.value(),
            cold_metrics.average_delivery_latency.value(),
            report.migrated.value(),
            cold_traffic,
            report.reallocated_users,
        );
        // The warm strategy must stay within a sane band of the cold one.
        assert!(
            warm_metrics.average_delivery_latency.value()
                <= cold_metrics.average_delivery_latency.value() * 2.0 + 5.0,
            "warm re-solve drifted too far from the cold optimum"
        );
        strategy = warm;
    }

    println!(
        "\ntotals over 12 epochs: warm migrated {warm_migrated:.0} MB with {warm_moves} game moves; \
         a cold re-solve would ship {cold_migrated:.0} MB with {cold_moves} moves."
    );
    assert!(warm_migrated < cold_migrated * 0.5, "warm migration must save most traffic");
}
