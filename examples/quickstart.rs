//! Quickstart: build an edge storage system, solve it with IDDE-G, inspect
//! the strategy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use idde::prelude::*;

fn main() {
    // 1. A city. The synthetic EUA-like population mirrors the paper's
    //    Melbourne-CBD extract (125 server sites, 816 users); we sample the
    //    paper's default experiment point: N = 30 servers, M = 200 users,
    //    K = 5 data items.
    let mut rng = idde::seeded_rng(2022);
    let scenario = SyntheticEua::default().sample(30, 200, 5, &mut rng);
    println!(
        "scenario: {} servers, {} users, {} data items, {} requests",
        scenario.num_servers(),
        scenario.num_users(),
        scenario.num_data(),
        scenario.requests.total_requests(),
    );
    println!(
        "coverage: every user sees {:.1} candidate servers on average",
        scenario.coverage.mean_candidates_per_user()
    );

    // 2. A problem instance: wireless environment (η=1, loss=3, ω=−174 dBm)
    //    plus a random density-1.0 edge topology (links at 2–6 GB/s, cloud
    //    at 600 MB/s).
    let problem = Problem::standard(scenario, &mut rng);

    // 3. Solve with IDDE-G: Phase #1 finds a Nash equilibrium of the IDDE-U
    //    game, Phase #2 greedily places replicas.
    let report = IddeG::default().solve_with_report(&problem);
    println!(
        "IDDE-G: game converged in {} passes / {} moves, {} replicas placed, {:?} total",
        report.game_passes,
        report.game_moves,
        report.delivery_iterations,
        report.total_time(),
    );

    // 4. Score it with the paper's two objectives.
    let metrics = problem.evaluate(&report.strategy);
    println!("{metrics}");
    let all_cloud =
        problem.all_cloud_latency().value() / problem.scenario.requests.total_requests() as f64;
    println!("for reference, serving everything from the cloud would average {all_cloud:.1} ms");
}
