//! Transfer-level validation of the latency model, visualised.
//!
//! The analytic path costs (`idde_net::PathModel`) idealise multi-hop
//! transfers. This example drives the chunk-level discrete-event simulator
//! against the closed forms on a real random topology:
//!
//! 1. chunk-count sweep — watch the simulated transfer slide from the
//!    store-and-forward cost (1 chunk) to the pipelined bound (∞ chunks);
//! 2. contention sweep — how much concurrent traffic breaks the
//!    no-contention idealisation both closed forms share.
//!
//! ```sh
//! cargo run --release --example transfer_simulation
//! ```

use idde::model::{MegaBytes, ServerId};
use idde::net::{
    best_path, generate_topology, simulate_concurrent, simulate_transfer, TopologyConfig, Transfer,
};

fn main() {
    let mut rng = idde::seeded_rng(13);
    let topology = generate_topology(25, &TopologyConfig::paper(1.2), &mut rng);
    let size = MegaBytes(60.0);

    // Pick a pair with a multi-hop widest path.
    let (from, to, path) = (0..25u32)
        .flat_map(|a| (0..25u32).map(move |b| (a, b)))
        .filter(|&(a, b)| a != b)
        .filter_map(|(a, b)| {
            best_path(topology.graph(), ServerId(a), ServerId(b), true)
                .map(|p| (ServerId(a), ServerId(b), p))
        })
        .max_by_key(|(_, _, p)| p.len())
        .expect("connected topology");
    let speeds: Vec<f64> = path
        .windows(2)
        .map(|w| {
            topology
                .graph()
                .neighbors(w[0])
                .iter()
                .filter(|&&(n, _)| n == w[1].0)
                .map(|&(_, cost)| 1000.0 / cost)
                .fold(0.0, f64::max)
        })
        .collect();

    let additive: f64 = speeds.iter().map(|s| 1000.0 * size.value() / s).sum();
    let bottleneck = topology.edge_latency(size, from, to).value();
    println!(
        "longest widest path: v{from} → v{to}, {} hops, bottleneck {:.0} MB/s",
        speeds.len(),
        speeds.iter().copied().fold(f64::INFINITY, f64::min)
    );
    println!("closed forms: store-and-forward {additive:.2} ms, pipelined {bottleneck:.2} ms\n");

    println!("{:>8} {:>14} {:>22}", "chunks", "simulated ms", "vs pipelined bound");
    let mut last = f64::INFINITY;
    for chunks in [1usize, 2, 4, 8, 32, 128, 1024] {
        let t = simulate_transfer(&speeds, size, chunks).value();
        println!("{chunks:>8} {t:>14.2} {:>21.1}%", (t / bottleneck - 1.0) * 100.0);
        assert!(t <= last + 1e-9, "more chunks can only help");
        assert!(t >= bottleneck - 1e-9, "nothing beats the bottleneck bound");
        last = t;
    }
    let single = simulate_transfer(&speeds, size, 1).value();
    assert!((single - additive).abs() < 1e-6, "1 chunk IS store-and-forward");

    println!("\ncontention: N concurrent 60 MB transfers over the same path (64 chunks)");
    println!("{:>8} {:>16}", "flows", "slowest done ms");
    for flows in [1usize, 2, 4, 8] {
        let transfers: Vec<Transfer> =
            (0..flows).map(|_| Transfer { from, to, size, start_ms: 0.0 }).collect();
        let done = simulate_concurrent(&topology, &transfers, 64);
        let worst = done.iter().map(|d| d.expect("path exists").value()).fold(0.0f64, f64::max);
        println!("{flows:>8} {worst:>16.2}");
        if flows == 1 {
            // 64 chunks leave (hops−1)/64 of pipeline-fill overhead above
            // the bottleneck bound — generous margin for long paths.
            assert!((worst - bottleneck) / bottleneck < 0.30);
        }
    }
    println!(
        "\nthe closed forms are the single-flow limits; contention is why real edge\n\
         fabrics over-provision the links the paper samples at 2-6 GB/s."
    );
}
