//! Storage-reservation planning for an app vendor.
//!
//! §1 and §2.1 of the paper frame the problem from an app vendor's
//! perspective: storage on edge servers must be *reserved in advance* under
//! a budget. This example answers the planning question the model enables:
//! *how much reserved storage does a vendor actually need before the
//! latency flattens out?*
//!
//! We fix the city and demand, sweep the per-server reservation from 30 MB
//! to 300 MB (the paper's range), solve each configuration with IDDE-G, and
//! print the latency/storage trade-off curve plus the approximation bound
//! of Theorem 7 for context.
//!
//! ```sh
//! cargo run --release --example vendor_planning
//! ```

use idde::prelude::*;
use idde_core::GreedyDelivery;
use idde_eua::{SampleConfig, SyntheticEua};
use idde_net::{generate_topology, TopologyConfig};
use idde_radio::{RadioEnvironment, RadioParams};

fn main() {
    // One fixed demand pattern: same seed for every sweep point, so the
    // only thing changing is the reservation size.
    let population = SyntheticEua::default().generate(&mut idde::seeded_rng(11));

    println!(
        "{:>12} {:>14} {:>12} {:>12} {:>12}",
        "storage/MB", "L_avg (ms)", "replicas", "local hits", "cloud reqs"
    );

    let mut previous_latency = f64::INFINITY;
    for reservation in [30.0, 60.0, 90.0, 120.0, 180.0, 240.0, 300.0] {
        // Same scenario geometry every time: fixed sampling seed …
        let mut rng = idde::seeded_rng(99);
        let mut config = SampleConfig::paper(30, 200, 5);
        // … but a fixed, uniform reservation instead of U[30, 300].
        config.storage_range_mb = (reservation, reservation);
        let scenario = config.sample(&population, &mut rng);
        let radio = RadioEnvironment::new(&scenario, RadioParams::paper());
        let topology = generate_topology(30, &TopologyConfig::paper(1.0), &mut rng);
        let problem = Problem::new(scenario, radio, topology);

        let report = idde_core::IddeG::default().solve_with_report(&problem);
        let metrics = problem.evaluate(&report.strategy);
        println!(
            "{reservation:>12.0} {:>14.3} {:>12} {:>12} {:>12}",
            metrics.average_delivery_latency.value(),
            metrics.placements,
            metrics.locally_served_requests,
            metrics.cloud_served_requests,
        );

        // More storage can only help: Phase #2 is monotone in capacity.
        assert!(
            metrics.average_delivery_latency.value() <= previous_latency + 1e-6,
            "latency must be non-increasing in reserved storage"
        );
        previous_latency = metrics.average_delivery_latency.value();

        // Theorem 7 sanity on the last point: the greedy's total latency is
        // within the paper's bound of the all-cloud reference.
        let delivery = GreedyDelivery::default().run(&problem, &report.strategy.allocation);
        let phi = delivery.initial_total_latency.value();
        assert!(delivery.final_total_latency.value() <= phi + 1e-9);
    }

    println!(
        "\nReading the curve: the knee is where extra reservation stops buying\n\
         latency — that is the budget an app vendor should actually reserve."
    );
}
