//! # idde — Interference-aware Data Delivery at the network Edge
//!
//! Façade crate re-exporting the whole IDDE workspace: the problem model,
//! the wireless and network substrates, the IDDE-G algorithm, the four
//! baselines, the EUA-like dataset generator, the simulation harness, the
//! online serving engine with its invariant auditor, and the deterministic
//! parallel-evaluation layer ([`par`], see `ARCHITECTURE.md` §3 for the
//! thread-count determinism contract).
//!
//! This reproduces *"Formulating Interference-aware Data Delivery Strategies
//! in Edge Storage Systems"* (Xia et al., ICPP 2022). See `README.md` for a
//! quickstart and `DESIGN.md` for the full system inventory.
//!
//! ```
//! // The 60-second tour: generate a city, solve it with IDDE-G, inspect the
//! // strategy quality.
//! use idde::prelude::*;
//!
//! let scenario = idde::eua::SyntheticEua::default()
//!     .sample(30, 200, 5, &mut idde::seeded_rng(42));
//! let problem = Problem::standard(scenario, &mut idde::seeded_rng(43));
//! let strategy = IddeG::default().solve(&problem);
//! let metrics = problem.evaluate(&strategy);
//! assert!(metrics.average_data_rate.value() > 0.0);
//! ```

#![warn(missing_docs)]

pub use idde_audit as audit;
pub use idde_baselines as baselines;
pub use idde_chaos as chaos;
pub use idde_core as core;
pub use idde_engine as engine;
pub use idde_eua as eua;
pub use idde_model as model;
pub use idde_net as net;
pub use idde_par as par;
pub use idde_radio as radio;
pub use idde_shard as shard;
pub use idde_sim as sim;
pub use idde_solver as solver;

/// Creates the deterministic RNG used throughout the workspace.
///
/// All experiments derive their randomness from `ChaCha8Rng` streams seeded
/// from a master seed, making every figure in `EXPERIMENTS.md` exactly
/// reproducible.
pub fn seeded_rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use idde_audit::{AuditConfig, AuditReport, Auditor};
    pub use idde_baselines::{Cdp, DeliveryStrategy, DupG, IddeGStrategy, IddeIp, Saa};
    pub use idde_chaos::{FaultPlan, FaultSpec};
    pub use idde_core::{IddeG, Metrics, Problem, Strategy};
    pub use idde_engine::{Engine, EngineConfig, WorkloadConfig, WorkloadGenerator};
    pub use idde_eua::SyntheticEua;
    pub use idde_model::{
        Allocation, CoverageMap, DataId, DataItem, EdgeServer, MegaBytes, MegaBytesPerSec,
        Milliseconds, Placement, Point, RequestMatrix, Scenario, ScenarioBuilder, ServerId, User,
        UserId, Watts,
    };
    pub use idde_net::Topology;
    pub use idde_radio::RadioEnvironment;
    pub use idde_shard::{ShardEngine, ShardPlan, ShardRouter};
}
