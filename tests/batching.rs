//! Batched-ingestion equivalence (ISSUE 7, satellite 4): across random
//! churn floods the group-commit layer must honour its determinism
//! contract at every batch size.
//!
//! * `--batch 1` *is* the classic per-event path: the metrics CSV is
//!   byte-identical to a replay through `Engine::apply`.
//! * Across batch sizes {1, 7, 64, whole-tick}: user positions are
//!   bitwise equal (per-step clamping happens at ingest time), activity
//!   flags, the coverage relation and the ingest-time counters (events,
//!   arrivals, departures, moves, requests) all agree, the interference
//!   field of every replay passes the from-scratch consistency check, and
//!   a full invariant audit is clean. Equilibrium-derived gauges (repair
//!   counts, drift) may legitimately differ — a union repair is one game,
//!   not N.

use idde::engine::Event;
use idde::prelude::*;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn problem(seed: u64) -> Problem {
    let mut rng = idde::seeded_rng(seed);
    let scenario = SyntheticEua::default().sample(10, 40, 3, &mut rng);
    Problem::standard(scenario, &mut rng)
}

/// A scripted flood: `ticks` slices of `per_tick` events drawn from a
/// seeded generator — churn-heavy, with occasional requests and
/// infrastructure faults (both of which are flush barriers).
fn flood(seed: u64, ticks: usize, per_tick: usize, users: u32, servers: u32) -> Vec<Vec<Event>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..ticks)
        .map(|_| {
            (0..per_tick)
                .map(|_| {
                    let user = UserId(rng.gen_range(0..users));
                    match rng.gen_range(0..20u32) {
                        0..=11 => Event::Move {
                            user,
                            dx: rng.gen_range(-300.0..300.0),
                            dy: rng.gen_range(-300.0..300.0),
                        },
                        12..=14 => Event::Depart { user },
                        15..=16 => Event::Arrive { user },
                        17 => Event::Request { user, data: DataId(0) },
                        18 => Event::Jam {
                            server: ServerId(rng.gen_range(0..servers)),
                            floor_w: rng.gen_range(1e-9..1e-6),
                        },
                        _ => Event::Unjam { server: ServerId(rng.gen_range(0..servers)) },
                    }
                })
                .collect()
        })
        .collect()
}

/// Replays `ticks` on a fresh engine; `batch == 0` means the legacy
/// per-event `apply` loop (no batch layer at all).
fn replay(seed: u64, batch: u64, ticks: &[Vec<Event>]) -> Engine {
    let problem = problem(seed);
    let initial: Vec<bool> = (0..problem.scenario.num_users()).map(|j| j % 3 != 0).collect();
    let config = EngineConfig {
        paranoid: true,
        checkpoint_interval: 0,
        batch: batch.max(1),
        ..Default::default()
    };
    let mut engine = Engine::new(problem, config, initial);
    for (t, events) in ticks.iter().enumerate() {
        if batch == 0 {
            for event in events {
                engine.apply(event);
            }
        } else {
            engine.apply_batch(events);
        }
        engine.end_tick(t as u64);
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn batch_sizes_agree_on_state_and_batch_one_is_exact(
        seed in 0u64..2_000,
        ticks in 2usize..5,
        per_tick in 10usize..40,
    ) {
        let floods = flood(seed, ticks, per_tick, 40, 10);
        let legacy = replay(seed, 0, &floods);
        let baseline = replay(seed, 1, &floods);
        // Contract (a): batch = 1 is the bitwise oracle.
        prop_assert_eq!(
            legacy.metrics().to_csv(),
            baseline.metrics().to_csv(),
            "batch=1 diverged from the per-event path"
        );

        let whole_tick = (ticks * per_tick) as u64;
        for batch in [7u64, 64, whole_tick] {
            let batched = replay(seed, batch, &floods);
            let m = baseline.problem().scenario.num_users();
            for j in 0..m {
                let a = baseline.problem().scenario.users[j].position;
                let b = batched.problem().scenario.users[j].position;
                prop_assert_eq!(
                    (a.x.to_bits(), a.y.to_bits()),
                    (b.x.to_bits(), b.y.to_bits()),
                    "user {} position differs at batch {}", j, batch
                );
            }
            prop_assert_eq!(baseline.active(), batched.active(), "activity at batch {}", batch);
            prop_assert_eq!(
                &baseline.problem().scenario.coverage,
                &batched.problem().scenario.coverage,
                "coverage relation differs at batch {}", batch
            );
            let (ma, mb) = (baseline.metrics(), batched.metrics());
            prop_assert_eq!(
                (ma.events, ma.arrivals, ma.departures, ma.moves, ma.requests),
                (mb.events, mb.arrivals, mb.departures, mb.moves, mb.requests),
                "ingest counters differ at batch {}", batch
            );
            let field = idde_radio::InterferenceField::from_allocation(
                &batched.problem().radio,
                &batched.problem().scenario,
                batched.allocation(),
            );
            prop_assert!(field.consistency_check(), "field at batch {}", batch);
            let mut batched = batched;
            let report = batched.run_audit();
            prop_assert!(report.is_clean(), "audit at batch {}: {}", batch, report);
        }
    }
}
