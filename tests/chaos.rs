//! Fault-injection invariants: after *any* random sequence of server
//! outages, restorations and link faults, the engine's incrementally
//! maintained state — coverage relation, all-pairs path cache, allocation
//! and the interference field it induces — must equal a from-scratch
//! rebuild on the surviving topology, and the full invariant audit must
//! stay clean.

use idde::chaos::FaultSpec;
use idde::model::{ChannelIndex, CoverageMap};
use idde::prelude::*;
use idde_radio::InterferenceField;
use proptest::prelude::*;

fn sampled_problem(seed: u64) -> idde::core::Problem {
    let mut rng = idde::seeded_rng(seed);
    let gen = SyntheticEua {
        num_servers: 10,
        num_users: 24,
        width_m: 900.0,
        height_m: 700.0,
        ..Default::default()
    };
    let n = 4 + (seed % 4) as usize; // 4..=7 servers
    let m = 8 + (seed % 10) as usize; // 8..=17 users
    let scenario = gen.sample(n, m, 3, &mut rng);
    idde::core::Problem::standard(scenario, &mut rng)
}

/// A raw `(server, onset, duration, permanent)` outage draw.
type OutageDraw = (u32, u64, u64, bool);
/// A raw `(link, onset, duration)` cut draw.
type CutDraw = (u32, u64, u64);

/// A random fault schedule: server outages (some permanent) plus link cuts,
/// encoded through the public spec grammar so the test also exercises the
/// parser/compiler path the CLI uses.
fn arb_fault_run() -> impl proptest::strategy::Strategy<Value = (u64, Vec<OutageDraw>, Vec<CutDraw>)>
{
    (
        0u64..5_000,
        proptest::collection::vec((0u32..64, 0u64..60, 1u64..40, proptest::bool::ANY), 1..6),
        proptest::collection::vec((0u32..64, 0u64..60, 1u64..40), 0..4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fault_sequences_leave_incremental_state_equal_to_a_rebuild(
        (seed, outages, cuts) in arb_fault_run(),
    ) {
        let problem = sampled_problem(seed);
        let num_servers = problem.scenario.num_servers();
        let num_links = problem.topology.graph().num_links();

        let mut items: Vec<String> = Vec::new();
        for &(sraw, at, dur, permanent) in &outages {
            let server = sraw as usize % num_servers;
            if permanent {
                items.push(format!("server:{server}@{at}"));
            } else {
                items.push(format!("server:{server}@{at}+{dur}"));
            }
        }
        for &(lraw, at, dur) in &cuts {
            if num_links == 0 {
                break;
            }
            let link = problem.topology.graph().links()[lraw as usize % num_links];
            items.push(format!("link:{}-{}@{at}+{dur}", link.a, link.b));
        }
        let spec = FaultSpec::parse(&items.join(",")).unwrap();
        let mut plan = spec.compile(problem.topology.graph()).unwrap();

        // Every user active, no workload churn: the only events are faults,
        // so any divergence is the fault path's fault.
        let initial = vec![true; problem.scenario.num_users()];
        let mut engine = Engine::new(problem, EngineConfig::default(), initial);
        engine.run(&mut plan, 100);

        // 1. The incrementally disabled/enabled coverage relation equals a
        //    fresh geometric recompute with the surviving servers masked.
        let scenario = &engine.problem().scenario;
        let mut fresh_coverage = CoverageMap::compute(&scenario.servers, &scenario.users);
        for server in engine.faults().down_servers() {
            fresh_coverage.disable_server(server);
        }
        prop_assert_eq!(&fresh_coverage, &scenario.coverage, "coverage drifted (seed {})", seed);

        // 2. The incrementally rebuilt path cache equals a from-scratch
        //    all-pairs recompute on the surviving graph.
        let live = &engine.problem().topology;
        let rebuilt = engine.faults().effective_topology(
            engine.base_graph(),
            live.cloud_speed(),
            live.path_model(),
        );
        for o in scenario.server_ids() {
            for i in scenario.server_ids() {
                prop_assert_eq!(
                    live.try_unit_cost(o, i),
                    rebuilt.try_unit_cost(o, i),
                    "unit cost {} → {} drifted (seed {})", o, i, seed
                );
            }
        }

        // 3. The allocation the repairs left behind induces an interference
        //    field whose power sums match an independent resummation to the
        //    1e-12 relative contract (and the field's own rebuild check).
        let field = InterferenceField::from_allocation(
            &engine.problem().radio,
            scenario,
            engine.allocation(),
        );
        prop_assert!(field.consistency_check(), "field rebuild drifted (seed {})", seed);
        for server in scenario.server_ids() {
            for x in 0..scenario.servers[server.index()].num_channels {
                let channel = ChannelIndex(x);
                let direct: f64 = scenario
                    .user_ids()
                    .filter(|&u| engine.allocation().decision(u) == Some((server, channel)))
                    .map(|u| scenario.users[u.index()].power.value())
                    .sum();
                let cached = field.channel_power(server, channel);
                prop_assert!(
                    (cached - direct).abs()
                        <= InterferenceField::POWER_SUM_REL_TOL * cached.abs().max(direct.abs()),
                    "power sum at {} channel {} drifted: {} vs {} (seed {})",
                    server, x, cached, direct, seed
                );
            }
        }

        // 4. The full invariant audit (including liveness checks for any
        //    still-down servers) is clean.
        let report = engine.run_audit();
        prop_assert!(report.is_clean(), "audit found violations (seed {}): {}", seed, report);
    }
}
