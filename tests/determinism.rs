//! Reproducibility guarantees: everything EXPERIMENTS.md claims is
//! bit-reproducible must actually be bit-reproducible.

use idde::prelude::*;

fn sampled_problem(seed: u64) -> Problem {
    let mut rng = idde::seeded_rng(seed);
    let scenario = SyntheticEua::default().sample(20, 100, 4, &mut rng);
    Problem::standard(scenario, &mut rng)
}

#[test]
fn every_deterministic_approach_reproduces_bit_identically() {
    let p1 = sampled_problem(42);
    let p2 = sampled_problem(42);
    let approaches: Vec<Box<dyn idde_baselines::DeliveryStrategy>> = vec![
        Box::new(IddeGStrategy::default()),
        Box::new(Saa::default()),
        Box::new(Cdp),
        Box::new(DupG::default()),
        // IDDE-IP under *node* limits is deterministic too (wall-clock
        // budgets are not).
        Box::new(IddeIp::with_node_limits(5_000, 5_000)),
    ];
    for approach in approaches {
        let a = approach.solve_seeded(&p1, 7);
        let b = approach.solve_seeded(&p2, 7);
        assert_eq!(a, b, "{} is not reproducible", approach.name());
        let ma = p1.evaluate(&a);
        let mb = p2.evaluate(&b);
        assert_eq!(
            ma.average_data_rate.value().to_bits(),
            mb.average_data_rate.value().to_bits(),
            "{} rate differs at the bit level",
            approach.name()
        );
        assert_eq!(
            ma.average_delivery_latency.value().to_bits(),
            mb.average_delivery_latency.value().to_bits(),
            "{} latency differs at the bit level",
            approach.name()
        );
    }
}

#[test]
fn different_strategy_seeds_change_randomised_approaches_only() {
    let p = sampled_problem(43);
    // Deterministic approaches ignore the seed entirely.
    assert_eq!(Cdp.solve_seeded(&p, 1), Cdp.solve_seeded(&p, 2));
    // SAA's random allocation must react to it.
    assert_ne!(
        Saa::default().solve_seeded(&p, 1).allocation,
        Saa::default().solve_seeded(&p, 2).allocation
    );
}

#[test]
fn scenario_io_round_trips_sampled_float_precision() {
    // The plain-text format writes floats with Rust's shortest-round-trip
    // Display; a sampled scenario full of irrational-looking coordinates
    // must survive a save/load cycle exactly.
    let mut rng = idde::seeded_rng(44);
    let scenario = SyntheticEua::default().sample(12, 60, 3, &mut rng);
    let text = idde::model::io::to_string(&scenario);
    let parsed = idde::model::io::from_str(&text).expect("round trip parses");
    assert_eq!(parsed.servers, scenario.servers);
    assert_eq!(parsed.users, scenario.users);
    assert_eq!(parsed.data, scenario.data);
    assert_eq!(parsed.requests, scenario.requests);
    // And the *solutions* on both copies agree bit-for-bit.
    let mut rng_a = idde::seeded_rng(45);
    let mut rng_b = idde::seeded_rng(45);
    let pa = Problem::with_density(scenario, 1.0, &mut rng_a);
    let pb = Problem::with_density(parsed, 1.0, &mut rng_b);
    let sa = IddeGStrategy::default().solve_seeded(&pa, 0);
    let sb = IddeGStrategy::default().solve_seeded(&pb, 0);
    assert_eq!(sa, sb);
}

#[test]
fn svg_rendering_is_stable_across_runs() {
    let mut rng = idde::seeded_rng(46);
    let scenario = SyntheticEua::default().sample(8, 30, 2, &mut rng);
    let problem = Problem::standard(scenario, &mut rng);
    let strategy = IddeGStrategy::default().solve_seeded(&problem, 0);
    let opts = idde::model::svg::SvgOptions::default();
    let a = idde::model::svg::render(
        &problem.scenario,
        Some(&strategy.allocation),
        Some(&strategy.placement),
        &opts,
    );
    let b = idde::model::svg::render(
        &problem.scenario,
        Some(&strategy.allocation),
        Some(&strategy.placement),
        &opts,
    );
    assert_eq!(a, b);
    assert!(a.contains("<line "), "strategy render should include spokes");
}

#[test]
fn serving_engine_metrics_csv_is_byte_identical() {
    let run = || {
        let mut rng = idde::seeded_rng(42);
        let scenario = SyntheticEua::default().sample(12, 50, 3, &mut rng);
        let problem = Problem::standard(scenario, &mut rng);
        let config = idde::engine::EngineConfig { checkpoint_interval: 10, ..Default::default() };
        let mut workload = WorkloadGenerator::new(WorkloadConfig::default(), 3, 42);
        let initial = workload.initial_active(problem.scenario.num_users());
        let mut engine = Engine::new(problem, config, initial);
        engine.run(&mut workload, 30);
        engine.metrics().to_csv()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same (seed, workload config) must produce identical CSV bytes");
    assert!(a.contains("ticks,30\n"));
    assert!(a.contains("checkpoints,3\n"));
}

#[test]
fn fig1_and_table2_artifacts_are_deterministic() {
    use idde::sim::figures::{fig1_latency_test, Fig1Config};
    let a = fig1_latency_test(&Fig1Config::default());
    let b = fig1_latency_test(&Fig1Config::default());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.summary, y.summary);
    }
    let sets_a = idde::sim::table2_sets();
    let sets_b = idde::sim::table2_sets();
    assert_eq!(sets_a, sets_b);
}
