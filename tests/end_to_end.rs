//! End-to-end integration: the full pipeline from dataset to metrics, and
//! the paper's headline comparative claims on fixed seeds.

use std::time::Duration;

use idde::prelude::*;
use idde_baselines::standard_panel;

/// Builds the paper's default experiment point from the synthetic EUA-like
/// population.
fn default_problem(seed: u64) -> Problem {
    let mut rng = idde::seeded_rng(seed);
    let scenario = SyntheticEua::default().sample(30, 200, 5, &mut rng);
    Problem::standard(scenario, &mut rng)
}

#[test]
fn all_approaches_are_feasible_and_scored_consistently() {
    let problem = default_problem(1);
    for approach in standard_panel(Duration::from_millis(50)) {
        let strategy = approach.solve_seeded(&problem, 1);
        assert!(problem.is_feasible(&strategy), "{}", approach.name());
        let metrics = problem.evaluate(&strategy);
        assert!(metrics.average_data_rate.value() > 0.0, "{}", approach.name());
        assert!(metrics.average_delivery_latency.value() >= 0.0);
        // The average latency can never exceed the all-cloud average
        // (Eq. 8's min always includes the cloud).
        let all_cloud =
            problem.all_cloud_latency().value() / problem.scenario.requests.total_requests() as f64;
        assert!(
            metrics.average_delivery_latency.value() <= all_cloud + 1e-9,
            "{}: {} > {all_cloud}",
            approach.name(),
            metrics.average_delivery_latency.value()
        );
    }
}

#[test]
fn iddeg_wins_both_objectives_on_average() {
    // The paper's headline (§4.5.1): IDDE-G achieves the highest average
    // data rate and the lowest average delivery latency. Averaged over a
    // few seeds to avoid single-instance flukes; IDDE-IP is given a small
    // budget since its role here is only comparative.
    let seeds = [1u64, 2, 3, 4, 5];
    let mut totals: Vec<(String, f64, f64)> = Vec::new();
    for &seed in &seeds {
        let problem = default_problem(seed);
        for (i, approach) in standard_panel(Duration::from_millis(60)).iter().enumerate() {
            let strategy = approach.solve_seeded(&problem, seed);
            let metrics = problem.evaluate(&strategy);
            if totals.len() <= i {
                totals.push((approach.name().to_string(), 0.0, 0.0));
            }
            totals[i].1 += metrics.average_data_rate.value();
            totals[i].2 += metrics.average_delivery_latency.value();
        }
    }
    let iddeg = totals.iter().find(|t| t.0 == "IDDE-G").expect("panel contains IDDE-G");
    for other in &totals {
        if other.0 == "IDDE-G" {
            continue;
        }
        assert!(
            iddeg.1 >= other.1,
            "IDDE-G rate {} must beat {} rate {}",
            iddeg.1,
            other.0,
            other.1
        );
        assert!(
            iddeg.2 <= other.2,
            "IDDE-G latency {} must beat {} latency {}",
            iddeg.2,
            other.0,
            other.2
        );
    }
}

#[test]
fn saa_has_the_worst_rate() {
    // §4.5.1: IDDE-G's biggest rate advantage is over SAA (random
    // allocation ignores interference entirely).
    let seeds = [1u64, 2, 3];
    let mut saa = 0.0;
    let mut others = f64::INFINITY;
    for &seed in &seeds {
        let problem = default_problem(seed);
        for approach in standard_panel(Duration::from_millis(40)) {
            let metrics = problem.evaluate(&approach.solve_seeded(&problem, seed));
            let rate = metrics.average_data_rate.value();
            if approach.name() == "SAA" {
                saa += rate;
            } else {
                others = others.min(rate);
            }
        }
    }
    assert!(saa / seeds.len() as f64 <= others + 1e-9, "SAA must have the worst mean rate");
}

#[test]
fn more_servers_raise_rate_and_cut_latency() {
    // Fig. 3's shape: with M fixed, growing N disperses users (higher
    // rates) and adds storage (lower latencies). Compared at the sweep's
    // endpoints, averaged over seeds.
    let eval = |n: usize, seed: u64| {
        let mut rng = idde::seeded_rng(seed);
        let scenario = SyntheticEua::default().sample(n, 200, 5, &mut rng);
        let problem = Problem::standard(scenario, &mut rng);
        let metrics = problem.evaluate(&IddeGStrategy::default().solve_seeded(&problem, seed));
        (metrics.average_data_rate.value(), metrics.average_delivery_latency.value())
    };
    let seeds = [10u64, 11, 12];
    let (mut r20, mut l20, mut r50, mut l50) = (0.0, 0.0, 0.0, 0.0);
    for &s in &seeds {
        let (r, l) = eval(20, s);
        r20 += r;
        l20 += l;
        let (r, l) = eval(50, s);
        r50 += r;
        l50 += l;
    }
    assert!(r50 > r20, "rate must grow with N ({r20} → {r50})");
    assert!(l50 < l20, "latency must fall with N ({l20} → {l50})");
}

#[test]
fn more_users_cut_rate_and_raise_latency() {
    // Fig. 4's shape, endpoints M = 50 vs M = 350.
    let eval = |m: usize, seed: u64| {
        let mut rng = idde::seeded_rng(seed);
        let scenario = SyntheticEua::default().sample(30, m, 5, &mut rng);
        let problem = Problem::standard(scenario, &mut rng);
        let metrics = problem.evaluate(&IddeGStrategy::default().solve_seeded(&problem, seed));
        (metrics.average_data_rate.value(), metrics.average_delivery_latency.value())
    };
    let seeds = [20u64, 21, 22];
    let (mut r50, mut l50, mut r350, mut l350) = (0.0, 0.0, 0.0, 0.0);
    for &s in &seeds {
        let (r, l) = eval(50, s);
        r50 += r;
        l50 += l;
        let (r, l) = eval(350, s);
        r350 += r;
        l350 += l;
    }
    assert!(r350 < r50, "rate must fall with M ({r50} → {r350})");
    assert!(l350 > l50, "latency must rise with M ({l50} → {l350})");
    // Fig. 4(a) quantitatively: the drop from M=50 to M=350 is huge
    // (≈65% in the paper).
    assert!(r350 / r50 < 0.6, "the rate collapse must be substantial ({r50} → {r350})");
}

#[test]
fn real_eua_csv_files_are_used_when_present() {
    // End-to-end of the dataset substitution path: write EUA-format CSVs,
    // load them, sample a scenario, solve it.
    let dir = std::env::temp_dir().join("idde-e2e-eua");
    std::fs::create_dir_all(&dir).unwrap();
    let servers = dir.join("site-test.csv");
    let users = dir.join("users-test.csv");
    let mut s = String::from("SITE_ID,LATITUDE,LONGITUDE\n");
    for i in 0..6 {
        s.push_str(&format!("{i},{},{}\n", -37.81 - 0.001 * i as f64, 144.96 + 0.001 * i as f64));
    }
    std::fs::write(&servers, s).unwrap();
    let mut u = String::from("Latitude,Longitude\n");
    for i in 0..30 {
        u.push_str(&format!(
            "{},{}\n",
            -37.8105 - 0.0009 * (i % 6) as f64,
            144.9605 + 0.0009 * (i % 5) as f64
        ));
    }
    std::fs::write(&users, u).unwrap();

    let mut rng = idde::seeded_rng(3);
    let population =
        idde::eua::csv::load_base_population(&servers, &users, (150.0, 300.0), &mut rng)
            .unwrap()
            .expect("files exist");
    let scenario = idde::eua::SampleConfig::paper(4, 15, 3).sample(&population, &mut rng);
    let problem = Problem::standard(scenario, &mut rng);
    let strategy = IddeGStrategy::default().solve_seeded(&problem, 0);
    assert!(problem.is_feasible(&strategy));
    std::fs::remove_dir_all(&dir).ok();
}
