//! Determinism under parallelism: the contract documented in
//! `crates/par` and ARCHITECTURE.md — *same seed + any worker count ⇒
//! identical equilibrium, identical placement, byte-identical serve CSV* —
//! checked end to end.
//!
//! All sweeping tests funnel through [`with_threads`], which serialises
//! access to the global worker-count override (the test harness runs tests
//! concurrently; the override is process-wide).

use idde::core::{GameConfig, IddeUGame, Problem, ScoringMode};
use idde::prelude::*;
use idde_radio::InterferenceField;
use proptest::prelude::*;
// `idde::prelude::*` also exports a `Strategy` (the solution pair), which
// shadows the proptest trait in the glob — import the trait explicitly.
use proptest::strategy::Strategy as _;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises tests that mutate the process-wide worker-count override.
fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        // A panic under a previous override must not poison the suite.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `f` once per worker count in `sweep`, restoring the ambient
/// default afterwards, and returns the per-count results.
fn with_threads<R>(sweep: &[usize], mut f: impl FnMut() -> R) -> Vec<R> {
    let _guard = threads_lock();
    let results = sweep
        .iter()
        .map(|&t| {
            idde::par::set_threads(t);
            f()
        })
        .collect();
    idde::par::set_threads(0);
    results
}

fn sampled_problem(seed: u64) -> Problem {
    let mut rng = idde::seeded_rng(seed);
    let scenario = SyntheticEua::default().sample(15, 80, 4, &mut rng);
    Problem::standard(scenario, &mut rng)
}

fn parallel_game() -> GameConfig {
    GameConfig { scoring: ScoringMode::Parallel, ..GameConfig::default() }
}

#[test]
fn serve_csv_and_final_strategy_are_thread_count_invariant() {
    // The tentpole contract on the full online path: engine default config
    // (parallel scoring), churning workload, worker counts 1/2/8.
    let runs = with_threads(&[1, 2, 8], || {
        let problem = sampled_problem(42);
        let mut workload = WorkloadGenerator::new(WorkloadConfig::default(), 4, 42);
        let initial = workload.initial_active(problem.scenario.num_users());
        let mut engine = Engine::new(problem, EngineConfig::default(), initial);
        engine.run(&mut workload, 25);
        (engine.metrics().to_csv(), engine.strategy())
    });
    let (csv_1, strategy_1) = &runs[0];
    for (t, (csv, strategy)) in [1usize, 2, 8].into_iter().zip(&runs) {
        assert_eq!(csv, csv_1, "serve CSV changed between 1 and {t} workers");
        assert_eq!(
            strategy.allocation, strategy_1.allocation,
            "final allocation changed between 1 and {t} workers"
        );
        assert_eq!(
            strategy.placement, strategy_1.placement,
            "final placement changed between 1 and {t} workers"
        );
    }
}

#[test]
fn chaos_serve_csv_is_thread_count_invariant() {
    // Same contract as the healthy serve, with a seeded fault schedule —
    // outages, link cuts and jamming — injected into the event stream: the
    // degradation and repair paths must be as thread-count invariant as the
    // steady state. Same seed + same spec ⇒ byte-identical CSV at 1/2/8
    // workers.
    let runs = with_threads(&[1, 2, 8], || {
        let problem = sampled_problem(42);
        let mut plan = idde::chaos::FaultSpec::parse("rand:2022:2:1:1@15+8")
            .unwrap()
            .compile(problem.topology.graph())
            .unwrap();
        let mut workload = WorkloadGenerator::new(WorkloadConfig::default(), 4, 42);
        let initial = workload.initial_active(problem.scenario.num_users());
        let config = EngineConfig { audit_every: 50, ..EngineConfig::default() };
        let mut engine = Engine::new(problem, config, initial);
        engine.run_sources(&mut [&mut plan, &mut workload], 25);
        assert_eq!(engine.metrics().audit_violations, 0, "chaos run must stay audit-clean");
        assert!(engine.metrics().server_outages > 0, "the fault plan must actually fire");
        (engine.metrics().to_csv(), engine.strategy())
    });
    let (csv_1, strategy_1) = &runs[0];
    for (t, (csv, strategy)) in [1usize, 2, 8].into_iter().zip(&runs) {
        assert_eq!(csv, csv_1, "chaos serve CSV changed between 1 and {t} workers");
        assert_eq!(
            strategy.allocation, strategy_1.allocation,
            "final allocation changed between 1 and {t} workers"
        );
        assert_eq!(
            strategy.placement, strategy_1.placement,
            "final placement changed between 1 and {t} workers"
        );
    }
}

#[test]
fn offline_solve_is_thread_count_invariant() {
    // Phase #1 + Phase #2 from scratch, parallel scoring mode, swept
    // across worker counts: the equilibrium and its metrics must not move
    // a single bit.
    let runs = with_threads(&[1, 2, 3, 8], || {
        let problem = sampled_problem(7);
        let strategy =
            idde::core::IddeG { game: parallel_game(), ..Default::default() }.solve(&problem);
        let metrics = problem.evaluate(&strategy);
        (
            strategy,
            metrics.average_data_rate.value().to_bits(),
            metrics.average_delivery_latency.value().to_bits(),
        )
    });
    for run in &runs[1..] {
        assert_eq!(run.0, runs[0].0, "strategy differs across worker counts");
        assert_eq!(run.1, runs[0].1, "rate differs at the bit level");
        assert_eq!(run.2, runs[0].2, "latency differs at the bit level");
    }
}

#[test]
fn scoring_modes_agree_under_winner_arbitration() {
    // Under MaxGainWinner arbitration the parallel scan is a pure drop-in
    // for the serial scan: identical trajectory, not merely an equally good
    // equilibrium.
    use idde::core::game::ArbitrationPolicy;
    for seed in [3u64, 11] {
        let problem = sampled_problem(seed);
        let solve = |scoring| {
            let game = IddeUGame::new(GameConfig {
                arbitration: ArbitrationPolicy::MaxGainWinner,
                scoring,
                ..GameConfig::default()
            });
            let outcome = game.run(&problem);
            (outcome.passes, outcome.moves, outcome.field.into_allocation())
        };
        assert_eq!(
            solve(ScoringMode::Serial),
            solve(ScoringMode::Parallel),
            "seed {seed}: winner arbitration must be scoring-mode invariant"
        );
    }
}

/// Small random problems; the seed rides along for shrink reports.
fn arb_problem() -> impl proptest::strategy::Strategy<Value = (u64, Problem)> {
    (0u64..5_000).prop_map(|seed| {
        let mut rng = idde::seeded_rng(seed);
        let n = 3 + (seed % 5) as usize;
        let m = 5 + (seed % 12) as usize;
        let k = 1 + (seed % 4) as usize;
        let gen = SyntheticEua {
            num_servers: 8,
            num_users: 20,
            width_m: 900.0,
            height_m: 700.0,
            ..Default::default()
        };
        let scenario = gen.sample(n, m, k, &mut rng);
        (seed, Problem::standard(scenario, &mut rng))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The parallel scoring pass (`scan_deviations`) must select exactly
    /// the deviation the serial per-player primitive
    /// (`profitable_deviation`) selects, for every player, at an arbitrary
    /// mid-trajectory profile.
    #[test]
    fn parallel_scan_matches_serial_deviations(
        (seed, problem) in arb_problem(),
        passes in 0usize..3,
    ) {
        // Walk the game a few passes to land on a non-trivial profile.
        let game = IddeUGame::new(GameConfig {
            max_passes: passes,
            ..GameConfig::default()
        });
        let field: InterferenceField<'_> = game.run(&problem).field;

        let players: Vec<UserId> = problem.scenario.user_ids().collect();
        let par_game = IddeUGame::new(parallel_game());
        let batch = par_game.scan_deviations(&field, &players);
        prop_assert_eq!(batch.len(), players.len());
        for (&user, scanned) in players.iter().zip(&batch) {
            let serial = par_game.profitable_deviation(&field, user);
            prop_assert_eq!(
                scanned, &serial,
                "seed {}: user {} scored differently in the batch scan", seed, user
            );
        }
    }
}
