//! Property-based tests over randomly generated instances: the invariants
//! that must hold for *every* scenario, allocation walk and placement run.

use idde::core::{GreedyDelivery, IddeUGame, Problem, Strategy as IddeStrategy};
use idde::net::{all_pairs_dijkstra, all_pairs_floyd_warshall, EdgeGraph, Link};
use idde::prelude::{
    Cdp, DupG, IddeGStrategy, MegaBytesPerSec, Saa, ServerId, SyntheticEua, UserId,
};
use idde_radio::InterferenceField;
use proptest::prelude::*;

/// Strategy for a small random IDDE problem; returns the seed so failures
/// shrink to a reproducible instance.
fn arb_problem() -> impl proptest::strategy::Strategy<Value = (u64, Problem)> {
    (0u64..5_000).prop_map(|seed| {
        let mut rng = idde::seeded_rng(seed);
        let gen = SyntheticEua {
            num_servers: 8,
            num_users: 20,
            width_m: 900.0,
            height_m: 700.0,
            ..Default::default()
        };
        let n = 3 + (seed % 5) as usize; // 3..=7 servers
        let m = 5 + (seed % 12) as usize; // 5..=16 users
        let k = 1 + (seed % 4) as usize; // 1..=4 data items
        let scenario = gen.sample(n, m, k, &mut rng);
        (seed, Problem::standard(scenario, &mut rng))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// A random walk of allocations/deallocations keeps the incremental
    /// interference field consistent with a from-scratch rebuild.
    #[test]
    fn field_stays_consistent_under_random_walks(
        (seed, problem) in arb_problem(),
        steps in proptest::collection::vec((0u32..64, 0u32..64, 0u32..8, proptest::bool::ANY), 1..60),
    ) {
        let mut field = InterferenceField::new(&problem.radio, &problem.scenario);
        for (uraw, sraw, xraw, dealloc) in steps {
            let user = UserId(uraw % problem.scenario.num_users() as u32);
            if dealloc {
                field.deallocate(user);
                continue;
            }
            let servers = problem.scenario.coverage.servers_of(user);
            if servers.is_empty() {
                continue;
            }
            let server = servers[(sraw as usize) % servers.len()];
            let channels = problem.scenario.servers[server.index()].num_channels as u32;
            field.allocate(user, server, idde::model::ChannelIndex((xraw % channels) as u16));
        }
        prop_assert!(field.consistency_check(), "seed {seed}");
        // Rates are finite, non-negative and capped.
        for u in problem.scenario.user_ids() {
            let r = field.rate(u).value();
            prop_assert!(r.is_finite() && r >= 0.0);
            prop_assert!(r <= problem.scenario.users[u.index()].max_rate.value() + 1e-9);
        }
    }

    /// A random allocate/deallocate walk produces exactly the state of a
    /// field rebuilt from scratch off the final profile: identical
    /// per-channel occupant sets and power sums, and a passing
    /// `consistency_check`. This is the invariant the serving engine's
    /// incremental repair leans on.
    #[test]
    fn random_walk_field_equals_rebuilt_field(
        (seed, problem) in arb_problem(),
        steps in proptest::collection::vec((0u32..64, 0u32..64, 0u32..8, proptest::bool::ANY), 1..80),
    ) {
        let mut field = InterferenceField::new(&problem.radio, &problem.scenario);
        for (uraw, sraw, xraw, dealloc) in steps {
            let user = UserId(uraw % problem.scenario.num_users() as u32);
            if dealloc {
                field.deallocate(user);
                continue;
            }
            let servers = problem.scenario.coverage.servers_of(user);
            if servers.is_empty() {
                continue;
            }
            let server = servers[(sraw as usize) % servers.len()];
            let channels = problem.scenario.servers[server.index()].num_channels as u32;
            field.allocate(user, server, idde::model::ChannelIndex((xraw % channels) as u16));
        }
        prop_assert!(field.consistency_check(), "seed {seed}");
        let rebuilt = InterferenceField::from_allocation(
            &problem.radio,
            &problem.scenario,
            field.allocation(),
        );
        for server in problem.scenario.server_ids() {
            for x in 0..problem.scenario.servers[server.index()].num_channels {
                let channel = idde::model::ChannelIndex(x);
                let mut walked: Vec<UserId> = field.occupants(server, channel).to_vec();
                let mut fresh: Vec<UserId> = rebuilt.occupants(server, channel).to_vec();
                walked.sort_unstable();
                fresh.sort_unstable();
                prop_assert_eq!(walked, fresh, "seed {} channel ({server}, {channel})", seed);
                let dp = field.channel_power(server, channel)
                    - rebuilt.channel_power(server, channel);
                prop_assert!(
                    dp.abs() < 1e-9,
                    "seed {seed}: power sum drifted by {dp} on ({server}, {channel})"
                );
            }
        }
    }

    /// Adding an occupant to any channel never increases another occupant's
    /// rate (interference monotonicity).
    #[test]
    fn rates_are_monotone_in_occupancy((seed, problem) in arb_problem()) {
        let scenario = &problem.scenario;
        let mut field = InterferenceField::new(&problem.radio, scenario);
        // Allocate the first half of the users round-robin.
        let half = scenario.num_users() / 2;
        for j in 0..half {
            let user = UserId::from_index(j);
            let servers = scenario.coverage.servers_of(user);
            if servers.is_empty() { continue; }
            let server = servers[j % servers.len()];
            let channels = scenario.servers[server.index()].num_channels as usize;
            field.allocate(user, server, idde::model::ChannelIndex((j % channels) as u16));
        }
        let before: Vec<f64> =
            scenario.user_ids().map(|u| field.rate(u).value()).collect();
        // Add one more user anywhere feasible.
        let newcomer = UserId::from_index(half.min(scenario.num_users() - 1));
        let servers = scenario.coverage.servers_of(newcomer);
        prop_assume!(!servers.is_empty());
        prop_assume!(field.allocation().decision(newcomer).is_none());
        field.allocate(newcomer, servers[0], idde::model::ChannelIndex(0));
        for u in scenario.user_ids() {
            if u == newcomer { continue; }
            prop_assert!(
                field.rate(u).value() <= before[u.index()] + 1e-9,
                "seed {seed}: user {u} gained rate from a newcomer"
            );
        }
    }

    /// The IDDE-U game always terminates, allocates every covered user, and
    /// the final profile respects the coverage constraint.
    #[test]
    fn game_always_terminates_feasibly((seed, problem) in arb_problem()) {
        let outcome = IddeUGame::default().run(&problem);
        prop_assert!(outcome.converged, "seed {seed}");
        let alloc = outcome.field.allocation();
        prop_assert!(alloc.respects_coverage(&problem.scenario));
        for u in problem.scenario.user_ids() {
            let covered = !problem.scenario.coverage.servers_of(u).is_empty();
            prop_assert_eq!(alloc.decision(u).is_some(), covered, "seed {}", seed);
        }
    }

    /// Greedy delivery: storage constraint always holds, the total latency
    /// never exceeds the all-cloud reference, and every placement is
    /// accounted in the evaluator.
    #[test]
    fn greedy_delivery_invariants((seed, problem) in arb_problem()) {
        let allocation = IddeUGame::default().run(&problem).field.into_allocation();
        let outcome = GreedyDelivery::default().run(&problem, &allocation);
        let strategy = IddeStrategy::new(allocation, outcome.placement.clone());
        prop_assert!(strategy.placement.respects_storage(&problem.scenario), "seed {seed}");
        prop_assert!(
            outcome.final_total_latency.value() <= outcome.initial_total_latency.value() + 1e-9
        );
        let evaluated = problem.total_latency(&strategy).value();
        prop_assert!(
            (evaluated - outcome.final_total_latency.value()).abs() < 1e-6,
            "engine accounting ({}) must match the evaluator ({evaluated})",
            outcome.final_total_latency.value()
        );
    }

    /// Dijkstra and Floyd–Warshall agree on random graphs.
    #[test]
    fn shortest_paths_agree(
        n in 2usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12, 2_000.0f64..6_000.0), 0..30),
    ) {
        let links: Vec<Link> = edges
            .into_iter()
            .filter(|&(a, b, _)| a as usize % n != b as usize % n)
            .map(|(a, b, speed)| Link {
                a: ServerId(a % n as u32),
                b: ServerId(b % n as u32),
                speed: MegaBytesPerSec(speed),
            })
            .collect();
        let graph = EdgeGraph::new(n, links);
        let d = all_pairs_dijkstra(&graph);
        let f = all_pairs_floyd_warshall(&graph);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (d[i][j], f[i][j]);
                if a.is_infinite() || b.is_infinite() {
                    prop_assert!(a.is_infinite() && b.is_infinite());
                } else {
                    prop_assert!((a - b).abs() < 1e-9, "({i},{j}): {a} vs {b}");
                }
            }
        }
    }

    /// The spatial-grid coverage index agrees with the brute-force oracle
    /// after any mix of random radii, user walks (including excursions far
    /// outside the original bounding box) and disable/enable churn.
    #[test]
    fn grid_coverage_matches_brute_force_under_churn(
        server_sites in proptest::collection::vec(
            (0.0f64..2_000.0, 0.0f64..1_500.0, 40.0f64..500.0), 1..20),
        user_sites in proptest::collection::vec((0.0f64..2_000.0, 0.0f64..1_500.0), 1..30),
        steps in proptest::collection::vec(
            (0usize..64, -900.0f64..900.0, -900.0f64..900.0, 0usize..64, proptest::bool::ANY),
            0..50,
        ),
    ) {
        use idde::model::{CoverageMap, EdgeServer, MegaBytes, Point, User, Watts};
        let servers: Vec<EdgeServer> = server_sites
            .iter()
            .enumerate()
            .map(|(i, &(x, y, r))| EdgeServer {
                id: ServerId::from_index(i),
                position: Point::new(x, y),
                coverage_radius_m: r,
                num_channels: 3,
                channel_bandwidth: MegaBytesPerSec(200.0),
                storage: MegaBytes(100.0),
            })
            .collect();
        let mut users: Vec<User> = user_sites
            .iter()
            .enumerate()
            .map(|(j, &(x, y))| {
                User::new(UserId::from_index(j), Point::new(x, y), Watts(1.0), MegaBytesPerSec(200.0))
            })
            .collect();
        let mut grid = CoverageMap::compute(&servers, &users);
        let mut brute = CoverageMap::compute_brute_force(&servers, &users);
        prop_assert!(grid.has_spatial_index(), "grid path must actually be indexed");
        prop_assert!(!brute.has_spatial_index(), "oracle must stay brute-force");
        prop_assert_eq!(&grid, &brute);
        for (pick, dx, dy, spick, toggle) in steps {
            if toggle {
                let i = spick % servers.len();
                let sid = servers[i].id;
                if grid.is_enabled(sid) {
                    grid.disable_server(sid);
                    brute.disable_server(sid);
                } else {
                    grid.enable_server(&servers[i], &users);
                    brute.enable_server(&servers[i], &users);
                }
            } else {
                let j = pick % users.len();
                let p = users[j].position;
                users[j].position = Point::new(p.x + dx, p.y + dy);
                let user = users[j].clone();
                grid.update_user(&servers, &user);
                brute.update_user(&servers, &user);
            }
            prop_assert_eq!(&grid, &brute);
        }
        // The end state also matches a from-scratch compute with the same
        // disable set replayed (the documented rebuild recipe).
        let mut fresh = CoverageMap::compute(&servers, &users);
        for sid in grid.disabled_servers().collect::<Vec<_>>() {
            fresh.disable_server(sid);
        }
        prop_assert_eq!(&grid, &fresh);
    }

    /// Incremental all-pairs path repair: after any sequence of single-link
    /// cuts, restores and degradations, `Topology::apply_link_update` leaves
    /// exactly the matrix a full recompute on the surviving graph produces.
    #[test]
    fn incremental_path_repair_matches_full_recompute(
        n in 2usize..10,
        edges in proptest::collection::vec((0u32..10, 0u32..10, 2_000.0f64..6_000.0), 1..24),
        steps in proptest::collection::vec((0usize..64, 0u8..3), 1..30),
        pipelined in proptest::bool::ANY,
    ) {
        use idde::net::{LinkState, NetworkFaults, PathModel, Topology};
        let links: Vec<Link> = edges
            .into_iter()
            .filter(|&(a, b, _)| a as usize % n != b as usize % n)
            .map(|(a, b, speed)| Link {
                a: ServerId(a % n as u32),
                b: ServerId(b % n as u32),
                speed: MegaBytesPerSec(speed),
            })
            .collect();
        prop_assume!(!links.is_empty());
        let base = EdgeGraph::new(n, links.clone());
        let cloud = MegaBytesPerSec(600.0);
        let model = if pipelined { PathModel::Pipelined } else { PathModel::StoreAndForward };
        let mut faults = NetworkFaults::healthy(n, links.len());
        let mut live = Topology::with_model(base.clone(), cloud, model);
        for (pick, kind) in steps {
            let idx = pick % links.len();
            let state = match kind {
                0 => LinkState::Down,
                1 => LinkState::Up,
                _ => LinkState::Degraded(0.5),
            };
            faults.set_link(idx, state);
            let (a, b) = (links[idx].a, links[idx].b);
            live.apply_link_update(faults.effective_graph(&base), a, b);
            let full = Topology::with_model(faults.effective_graph(&base), cloud, model);
            for i in 0..n {
                for j in 0..n {
                    let (from, to) = (ServerId(i as u32), ServerId(j as u32));
                    let (l, f) = (live.try_unit_cost(from, to), full.try_unit_cost(from, to));
                    match (l, f) {
                        (None, None) => {}
                        (Some(lv), Some(fv)) => prop_assert!(
                            (lv - fv).abs() <= 1e-12,
                            "({i},{j}): incremental {lv} vs full {fv}"
                        ),
                        other => prop_assert!(
                            false,
                            "({i},{j}): reachability diverged: {other:?}"
                        ),
                    }
                }
            }
        }
    }

    /// Evaluated metrics are always physically sane.
    #[test]
    fn metrics_are_sane_for_every_panelist((seed, problem) in arb_problem()) {
        for strategy in [
            Box::new(IddeGStrategy::default()) as Box<dyn idde_baselines::DeliveryStrategy>,
            Box::new(Saa::default()),
            Box::new(Cdp),
            Box::new(DupG::default()),
        ] {
            let s = strategy.solve_seeded(&problem, seed);
            prop_assert!(problem.is_feasible(&s), "{} seed {seed}", strategy.name());
            let m = problem.evaluate(&s);
            prop_assert!(m.average_data_rate.value().is_finite());
            prop_assert!(m.average_data_rate.value() >= 0.0);
            prop_assert!(m.average_delivery_latency.value().is_finite());
            prop_assert!(m.average_delivery_latency.value() >= 0.0);
            prop_assert!(m.allocated_users <= m.total_users);
            prop_assert!(m.cloud_served_requests <= m.total_requests);
            prop_assert!(m.locally_served_requests <= m.total_requests);
        }
    }
}
