//! Robustness tests across the model's pluggable axes: alternative gain
//! laws (§2.2's "other wireless communication models"), both path cost
//! models, both game acceptance rules, heterogeneous servers and
//! open-coverage sampling.

use idde::core::{AcceptanceRule, GameConfig, IddeG, IddeUGame, Problem};
use idde::eua::{SampleConfig, SyntheticEua};
use idde::model::testkit;
use idde::net::{generate_topology, PathModel, Topology, TopologyConfig};
use idde::prelude::{IddeGStrategy, MegaBytesPerSec};
use idde::radio::{LogDistance, RadioEnvironment, RadioParams};
use idde_baselines::DeliveryStrategy as _;

fn sampled_scenario(seed: u64) -> idde::model::Scenario {
    let mut rng = idde::seeded_rng(seed);
    SyntheticEua::default().sample(15, 80, 4, &mut rng)
}

#[test]
fn alternative_gain_model_changes_numbers_not_behaviour() {
    // The paper: "the SINR can be calculated based on other wireless
    // communication models … without impacting the IDDE problem or the
    // performance of the proposed approaches fundamentally".
    let scenario = sampled_scenario(1);
    let mut rng = idde::seeded_rng(2);
    let topology = generate_topology(15, &TopologyConfig::paper(1.0), &mut rng);

    let power_law = RadioEnvironment::new(&scenario, RadioParams::paper());
    let log_distance =
        RadioEnvironment::with_model(&scenario, RadioParams::paper(), &LogDistance::default());

    let mut results = Vec::new();
    for radio in [power_law, log_distance] {
        let problem = Problem::new(scenario.clone(), radio, topology.clone());
        let report = IddeG::default().solve_with_report(&problem);
        assert!(report.game_converged, "the game must converge under either gain law");
        assert!(problem.is_feasible(&report.strategy));
        let metrics = problem.evaluate(&report.strategy);
        assert!(metrics.average_data_rate.value() > 0.0);
        results.push(metrics.average_data_rate.value());
    }
    // The two laws give different absolute rates (they are different
    // physics) — if they coincided exactly the plug point would be fake.
    assert!((results[0] - results[1]).abs() > 1e-6);
}

#[test]
fn store_and_forward_model_is_never_faster_than_pipelined() {
    // Additive path costs dominate bottleneck costs link-by-link, so for
    // the same strategy the store-and-forward latency is an upper bound.
    let scenario = sampled_scenario(3);
    let mut rng = idde::seeded_rng(4);
    let radio = RadioEnvironment::new(&scenario, RadioParams::paper());
    let base = generate_topology(15, &TopologyConfig::paper(1.0), &mut rng);
    let graph = base.graph().clone();

    let pipelined = Problem::new(
        scenario.clone(),
        radio.clone(),
        Topology::with_model(graph.clone(), MegaBytesPerSec(600.0), PathModel::Pipelined),
    );
    let additive = Problem::new(
        scenario,
        radio,
        Topology::with_model(graph, MegaBytesPerSec(600.0), PathModel::StoreAndForward),
    );

    // One shared strategy, scored under both cost models.
    let strategy = IddeGStrategy::default().solve_seeded(&pipelined, 7);
    let fast = pipelined.evaluate(&strategy).average_delivery_latency.value();
    let slow = additive.evaluate(&strategy).average_delivery_latency.value();
    assert!(
        slow >= fast - 1e-9,
        "store-and-forward ({slow} ms) must not beat pipelined ({fast} ms)"
    );
}

#[test]
fn benefit_only_rule_converges_on_small_instances() {
    // The paper-literal acceptance rule works fine when a pure equilibrium
    // exists — e.g. on the Fig. 2 example.
    let mut rng = idde::seeded_rng(5);
    let problem = Problem::standard(testkit::fig2_example(), &mut rng);
    let game = IddeUGame::new(GameConfig {
        acceptance: AcceptanceRule::BenefitOnly,
        max_passes: 5_000,
        ..Default::default()
    });
    let outcome = game.run(&problem);
    assert!(outcome.converged);
    assert!(idde::core::is_nash_equilibrium(&game, &outcome.field, 1e-9));
}

#[test]
fn guarded_and_unguarded_agree_when_no_cycles_exist() {
    // On fig2 both rules reach (possibly different) equilibria of similar
    // quality.
    let mut rng = idde::seeded_rng(6);
    let problem = Problem::standard(testkit::fig2_example(), &mut rng);
    let guarded = IddeUGame::default().run(&problem);
    let unguarded = IddeUGame::new(GameConfig {
        acceptance: AcceptanceRule::BenefitOnly,
        max_passes: 5_000,
        ..Default::default()
    })
    .run(&problem);
    assert!(guarded.converged && unguarded.converged);
    let a = guarded.field.average_rate().value();
    let b = unguarded.field.average_rate().value();
    assert!((a - b).abs() / b < 0.2, "equilibria should be of similar quality ({a} vs {b})");
}

#[test]
fn heterogeneous_servers_solve_end_to_end() {
    let mut rng = idde::seeded_rng(7);
    let population = SyntheticEua::default().generate(&mut rng);
    let mut cfg = SampleConfig::paper(12, 60, 3);
    cfg.channels_range = Some((1, 5));
    cfg.bandwidth_range_mbps = Some((50.0, 400.0));
    let scenario = cfg.sample(&population, &mut rng);
    let problem = Problem::standard(scenario, &mut rng);
    let report = IddeG::default().solve_with_report(&problem);
    assert!(report.game_converged);
    assert!(problem.is_feasible(&report.strategy));
    // Allocation must respect each server's own channel count.
    for (user, decision) in report.strategy.allocation.iter() {
        if let Some((server, channel)) = decision {
            assert!(
                (channel.index() as u16) < problem.scenario.servers[server.index()].num_channels,
                "user {user} sits on a channel its server does not expose"
            );
        }
    }
}

#[test]
fn open_coverage_users_fall_back_to_cloud() {
    let mut rng = idde::seeded_rng(8);
    let population = SyntheticEua::default().generate(&mut rng);
    let mut cfg = SampleConfig::paper(8, 120, 3);
    cfg.require_coverage = false;
    let scenario = cfg.sample(&population, &mut rng);
    let uncovered: Vec<_> = scenario.coverage.uncovered_users().collect();
    assert!(!uncovered.is_empty(), "8 of 125 sites must leave gaps");
    let problem = Problem::standard(scenario, &mut rng);
    let strategy = IddeGStrategy::default().solve_seeded(&problem, 1);
    let metrics = problem.evaluate(&strategy);
    assert_eq!(
        metrics.allocated_users,
        problem.scenario.num_users() - uncovered.len(),
        "exactly the covered users get allocated"
    );
    for user in uncovered {
        assert_eq!(strategy.allocation.decision(user), None);
        for &data in problem.scenario.requests.of_user(user) {
            let latency = problem.request_latency(&strategy, user, data);
            let cloud = problem.topology.cloud_latency(problem.scenario.data[data.index()].size);
            assert!((latency.value() - cloud.value()).abs() < 1e-9);
        }
    }
}

#[test]
fn fill_zero_benefit_mode_is_storage_feasible_end_to_end() {
    let scenario = sampled_scenario(9);
    let mut rng = idde::seeded_rng(10);
    let problem = Problem::standard(scenario, &mut rng);
    let solver = IddeG {
        delivery: idde::core::DeliveryConfig { fill_zero_benefit: true, ..Default::default() },
        ..Default::default()
    };
    let strategy = solver.solve(&problem);
    assert!(problem.is_feasible(&strategy));
    // Paper-literal mode packs storage much fuller.
    let lean = IddeG::default().solve(&problem);
    assert!(strategy.placement.num_placements() >= lean.placement.num_placements());
}
