//! Online serving engine correctness: a 500-event churn run where the
//! incremental repairs must keep the interference field consistent after
//! every churn event (`paranoid` mode asserts `consistency_check` inside
//! each repair), every 50th event triggers a full invariant audit (Eqs. 2–4
//! field cross-check plus the Eq. 6/8 placement audit), converged repairs
//! are Nash-certified over their dirty sets, and the repaired equilibrium
//! must stay within the drift threshold of a from-scratch re-solve at every
//! checkpoint.

use idde::engine::{EngineConfig, EventQueue};
use idde::prelude::*;

#[test]
fn five_hundred_events_of_incremental_repair_stay_consistent() {
    let mut rng = idde::seeded_rng(7);
    let scenario = SyntheticEua::default().sample(15, 70, 4, &mut rng);
    let problem = Problem::standard(scenario, &mut rng);

    let drift_threshold = 0.05;
    let config = EngineConfig {
        drift_threshold,
        // Checkpoints are driven by hand below, per event count not ticks.
        checkpoint_interval: 0,
        paranoid: true,
        audit_every: 50,
        ..Default::default()
    };
    let workload_config = WorkloadConfig {
        arrival_rate: 1.5,
        departure_rate: 1.5,
        move_probability: 0.1,
        ..Default::default()
    };
    let mut workload = WorkloadGenerator::new(workload_config, 4, 7);
    let initial = workload.initial_active(problem.scenario.num_users());
    let mut engine = Engine::new(problem, config, initial);

    let mut queue = EventQueue::new();
    let mut tick = 0u64;
    let mut events = 0usize;
    while events < 500 {
        workload.push_tick(tick, engine.active(), &mut queue);
        tick += 1;
        while let Some(scheduled) = queue.pop() {
            // `paranoid` makes every churn repair assert the field's
            // consistency against a from-scratch rebuild.
            engine.apply(&scheduled.event);
            events += 1;
            if events.is_multiple_of(50) {
                let drift = engine.checkpoint();
                if drift > drift_threshold {
                    // The checkpoint fell back to the full solution; the
                    // adopted strategy must now sit at the re-solved
                    // equilibrium (zero drift up to determinism).
                    let after = engine.checkpoint();
                    assert!(
                        after <= drift_threshold,
                        "drift {after} persists after a fallback at event {events}"
                    );
                }
            }
        }
        assert!(
            engine.problem().is_feasible(&engine.strategy()),
            "infeasible strategy after tick {tick}"
        );
    }

    let metrics = engine.metrics();
    assert!(metrics.events >= 500);
    assert!(metrics.repairs > 0, "churn must have triggered repairs");
    assert!(metrics.checkpoints >= 10);
    assert!(
        metrics.last_drift <= drift_threshold || metrics.fallbacks > 0,
        "drift {:.4} above threshold without a fallback",
        metrics.last_drift
    );
    // The workload actually exercised every event kind.
    assert!(metrics.arrivals > 0 && metrics.departures > 0);
    assert!(metrics.moves > 0 && metrics.requests > 0);
    // The periodic audits ran and every invariant held.
    assert!(metrics.audits >= 10, "expected ≥10 audits over 500+ events");
    assert!(metrics.audit_checks > 0);
    assert_eq!(metrics.audit_violations, 0, "audited churn run must be violation-free");
    assert!(metrics.certificates > 0, "converged repairs must be Nash-certified");
    assert_eq!(metrics.certificate_violations, 0);
    // A final full audit of the end state is clean too.
    let report = engine.run_audit();
    assert!(report.is_clean(), "{report}");
}
