//! Online serving engine correctness: a 500-event churn run where the
//! incremental repairs must keep the interference field consistent after
//! every churn event (`paranoid` mode asserts `consistency_check` inside
//! each repair) and the repaired equilibrium must stay within the drift
//! threshold of a from-scratch re-solve at every checkpoint.

use idde::engine::{EngineConfig, EventQueue};
use idde::prelude::*;

#[test]
fn five_hundred_events_of_incremental_repair_stay_consistent() {
    let mut rng = idde::seeded_rng(7);
    let scenario = SyntheticEua::default().sample(15, 70, 4, &mut rng);
    let problem = Problem::standard(scenario, &mut rng);

    let drift_threshold = 0.05;
    let config = EngineConfig {
        drift_threshold,
        // Checkpoints are driven by hand below, per event count not ticks.
        checkpoint_interval: 0,
        paranoid: true,
        ..Default::default()
    };
    let workload_config = WorkloadConfig {
        arrival_rate: 1.5,
        departure_rate: 1.5,
        move_probability: 0.1,
        ..Default::default()
    };
    let mut workload = WorkloadGenerator::new(workload_config, 4, 7);
    let initial = workload.initial_active(problem.scenario.num_users());
    let mut engine = Engine::new(problem, config, initial);

    let mut queue = EventQueue::new();
    let mut tick = 0u64;
    let mut events = 0usize;
    while events < 500 {
        workload.push_tick(tick, engine.active(), &mut queue);
        tick += 1;
        while let Some(scheduled) = queue.pop() {
            // `paranoid` makes every churn repair assert the field's
            // consistency against a from-scratch rebuild.
            engine.apply(&scheduled.event);
            events += 1;
            if events.is_multiple_of(50) {
                let drift = engine.checkpoint();
                if drift > drift_threshold {
                    // The checkpoint fell back to the full solution; the
                    // adopted strategy must now sit at the re-solved
                    // equilibrium (zero drift up to determinism).
                    let after = engine.checkpoint();
                    assert!(
                        after <= drift_threshold,
                        "drift {after} persists after a fallback at event {events}"
                    );
                }
            }
        }
        assert!(
            engine.problem().is_feasible(&engine.strategy()),
            "infeasible strategy after tick {tick}"
        );
    }

    let metrics = engine.metrics();
    assert!(metrics.events >= 500);
    assert!(metrics.repairs > 0, "churn must have triggered repairs");
    assert!(metrics.checkpoints >= 10);
    assert!(
        metrics.last_drift <= drift_threshold || metrics.fallbacks > 0,
        "drift {:.4} above threshold without a fallback",
        metrics.last_drift
    );
    // The workload actually exercised every event kind.
    assert!(metrics.arrivals > 0 && metrics.departures > 0);
    assert!(metrics.moves > 0 && metrics.requests > 0);
}
