//! The shard layer's migration-safety contract (ISSUE 6, satellite 3):
//! `--shards 1` — a `ShardRouter` with a single shard — must produce a
//! serve CSV *byte-identical* to the monolithic engine's, across seeds,
//! worker counts and an injected fault schedule. Plus the `K > 1`
//! guarantees the contract implies: deterministic output per `(seed, K)`
//! and a clean cross-shard audit throughout.

use idde::prelude::*;

fn sampled_problem(seed: u64) -> Problem {
    let mut rng = idde::seeded_rng(seed);
    let scenario = SyntheticEua::default().sample(14, 60, 4, &mut rng);
    Problem::standard(scenario, &mut rng)
}

/// Serves `ticks` ticks of the seeded workload (plus an optional fault
/// plan) through the monolithic engine and returns the metrics CSV.
fn monolithic_csv(problem: &Problem, seed: u64, ticks: u64, chaos: Option<&str>) -> String {
    let mut workload =
        WorkloadGenerator::new(WorkloadConfig::default(), problem.scenario.num_data(), seed);
    let initial = workload.initial_active(problem.scenario.num_users());
    let config = EngineConfig { audit_every: 25, ..Default::default() };
    let mut engine = Engine::new(problem.clone(), config, initial);
    match chaos {
        Some(spec) => {
            let mut plan =
                FaultSpec::parse(spec).and_then(|s| s.compile(engine.base_graph())).unwrap();
            engine.run_sources(&mut [&mut plan, &mut workload], ticks);
        }
        None => engine.run(&mut workload, ticks),
    }
    engine.metrics().to_csv()
}

/// The same serve through a `ShardRouter` with `shards` shards.
fn sharded_csv(
    problem: &Problem,
    shards: usize,
    seed: u64,
    ticks: u64,
    chaos: Option<&str>,
) -> String {
    let mut workload =
        WorkloadGenerator::new(WorkloadConfig::default(), problem.scenario.num_data(), seed);
    let initial = workload.initial_active(problem.scenario.num_users());
    let config = EngineConfig { audit_every: 25, ..Default::default() };
    let mut router = ShardRouter::new(problem.clone(), config, shards, initial).unwrap();
    match chaos {
        Some(spec) => {
            let graph = router.engines()[0].engine().base_graph();
            let mut plan = FaultSpec::parse(spec).and_then(|s| s.compile(graph)).unwrap();
            router.run_sources(&mut [&mut plan, &mut workload], ticks);
        }
        None => router.run(&mut workload, ticks),
    }
    let (_, _, violations) = router.cross_audit_stats();
    assert_eq!(violations, 0, "cross-shard audit violations at K = {shards}");
    router.metrics().to_csv()
}

#[test]
fn one_shard_serve_csv_is_byte_identical_across_seeds() {
    for seed in [2022u64, 7, 99] {
        let p = sampled_problem(seed);
        let mono = monolithic_csv(&p, seed, 60, None);
        let one = sharded_csv(&p, 1, seed, 60, None);
        assert_eq!(mono, one, "seed {seed}: --shards 1 diverged from the monolithic serve");
    }
}

#[test]
fn one_shard_serve_csv_is_byte_identical_across_worker_counts() {
    let p = sampled_problem(11);
    let reference = monolithic_csv(&p, 11, 60, None);
    for threads in [1usize, 2, 4] {
        idde::par::set_threads(threads);
        let one = sharded_csv(&p, 1, 11, 60, None);
        idde::par::set_threads(0);
        assert_eq!(reference, one, "{threads} workers changed the K = 1 serve CSV");
    }
}

#[test]
fn one_shard_serve_csv_is_byte_identical_under_chaos() {
    let spec = "rand:2022:2:1:1@20+8";
    let p = sampled_problem(5);
    let mono = monolithic_csv(&p, 5, 40, Some(spec));
    let one = sharded_csv(&p, 1, 5, 40, Some(spec));
    assert_eq!(mono, one, "--shards 1 diverged from the monolithic serve under chaos");
    // The spec really scheduled faults — the identity is not vacuous.
    let outages: u64 =
        mono.lines().find_map(|l| l.strip_prefix("server_outages,")).unwrap().parse().unwrap();
    assert!(outages > 0, "fault spec scheduled no outages:\n{mono}");
}

#[test]
fn multi_shard_serve_is_deterministic_and_clean() {
    let p = sampled_problem(3);
    for shards in [2usize, 3] {
        let a = sharded_csv(&p, shards, 3, 60, None);
        let b = sharded_csv(&p, shards, 3, 60, None);
        assert_eq!(a, b, "K = {shards} serve is not reproducible");
        assert!(a.contains("audit_violations,0\n"), "K = {shards}:\n{a}");
        assert!(a.contains("certificate_violations,0\n"), "K = {shards}:\n{a}");
    }
}
