//! Machine-checkable versions of the paper's §3 theory:
//!
//! * Theorem 3 — IDDE-U restricted to the proof's uniform-gain regime is a
//!   potential game: improving unilateral moves raise the potential.
//! * Theorem 4 — best-response dynamics terminate after finitely many
//!   moves, within the derived bound.
//! * Theorem 5 — the price of anarchy of the achieved equilibrium lies in
//!   `[R_min/R_max, 1]` against the exhaustive optimum.
//! * Theorems 6/7 — the greedy delivery profile's latency reduction is at
//!   least `(e−1)/2e` of the optimal reduction.

use idde::core::{congestion_benefit, congestion_potential, BenefitModel, GameConfig, IddeUGame};
use idde::prelude::*;
use idde::solver::ExhaustiveSolver;
use idde_radio::InterferenceField;
use rand::Rng;

fn tiny_problem(seed: u64) -> Problem {
    let mut rng = idde::seeded_rng(seed);
    Problem::standard(idde::model::testkit::tiny_overlap(), &mut rng)
}

fn small_random_problem(seed: u64) -> Problem {
    let mut rng = idde::seeded_rng(seed);
    let scenario = SyntheticEua {
        num_servers: 6,
        num_users: 12,
        width_m: 700.0,
        height_m: 500.0,
        ..Default::default()
    }
    .sample(4, 8, 2, &mut rng);
    Problem::standard(scenario, &mut rng)
}

#[test]
fn theorem3_improving_moves_raise_the_potential() {
    // Random walk over profiles: whenever a user's congestion benefit
    // improves by a move, the potential must strictly increase; whenever it
    // worsens, the potential must strictly decrease.
    for seed in 0..10u64 {
        let problem = small_random_problem(seed);
        let mut rng = idde::seeded_rng(1_000 + seed);
        let mut field = InterferenceField::new(&problem.radio, &problem.scenario);
        let mut checked = 0;
        for _ in 0..300 {
            let user = UserId(rng.gen_range(0..problem.scenario.num_users() as u32));
            let servers = problem.scenario.coverage.servers_of(user);
            if servers.is_empty() {
                continue;
            }
            let server = servers[rng.gen_range(0..servers.len())];
            let channels = problem.scenario.servers[server.index()].num_channels;
            let channel = idde::model::ChannelIndex(rng.gen_range(0..channels));
            if field.allocation().decision(user) == Some((server, channel)) {
                continue;
            }
            let was_allocated = field.allocation().decision(user).is_some();

            let benefit_before = congestion_benefit(&field, user);
            let potential_before = congestion_potential(&field);
            field.allocate(user, server, channel);
            let benefit_after = congestion_benefit(&field, user);
            let potential_after = congestion_potential(&field);

            if !was_allocated {
                assert!(
                    potential_after > potential_before,
                    "allocating a user must raise the potential"
                );
            } else if benefit_after > benefit_before + 1e-12 {
                assert!(
                    potential_after > potential_before,
                    "seed {seed}: improving move must raise π ({potential_before} → {potential_after})"
                );
            } else if benefit_after < benefit_before - 1e-12 {
                assert!(
                    potential_after < potential_before,
                    "seed {seed}: worsening move must lower π"
                );
            }
            checked += 1;
        }
        assert!(checked > 100, "the walk must actually exercise moves");
    }
}

#[test]
fn theorem4_dynamics_terminate_within_the_bound() {
    for seed in 0..5u64 {
        let problem = small_random_problem(100 + seed);
        let game =
            IddeUGame::new(GameConfig { benefit: BenefitModel::Congestion, ..Default::default() });
        let outcome = game.run(&problem);
        assert!(outcome.converged, "seed {seed}: congestion dynamics must converge");

        // Theorem 4's bound with Q_j := p_j (the uniform-gain reading):
        // Y ≤ M(Q²max − Q²min)/(2·Qmin) + M (the +M covers the initial
        // allocations, which the paper folds into its T_j term).
        let m = problem.scenario.num_users() as f64;
        let powers: Vec<f64> = problem.scenario.users.iter().map(|u| u.power.value()).collect();
        let qmax = powers.iter().copied().fold(0.0, f64::max);
        let qmin = powers.iter().copied().fold(f64::INFINITY, f64::min);
        let bound = m * (qmax * qmax - qmin * qmin) / (2.0 * qmin) + m;
        assert!(
            (outcome.moves as f64) <= bound.max(m),
            "seed {seed}: {} moves exceed the Theorem 4 bound {bound}",
            outcome.moves
        );
    }
}

#[test]
fn theorem5_poa_bounds_hold_against_the_exhaustive_optimum() {
    for seed in [0u64, 1, 2] {
        let problem = tiny_problem(seed);
        let outcome = IddeUGame::default().run(&problem);
        assert!(outcome.converged);
        let achieved = outcome.field.average_rate().value();
        let (_, optimal_total) =
            ExhaustiveSolver::default().best_allocation(&problem).expect("tiny space");
        let optimal = optimal_total / problem.scenario.num_users() as f64;

        // ρ ≤ 1: no equilibrium beats the optimum.
        assert!(achieved <= optimal + 1e-6, "seed {seed}: {achieved} > optimal {optimal}");
        // ρ ≥ R_min/R_max: with uniform caps this lower bound is the ratio
        // of the worst equilibrium user rate to the cap.
        let rmax = problem.scenario.users.iter().map(|u| u.max_rate.value()).fold(0.0, f64::max);
        let rmin = problem
            .scenario
            .user_ids()
            .map(|u| outcome.field.rate(u).value())
            .fold(f64::INFINITY, f64::min);
        let rho = achieved / optimal;
        assert!(
            rho >= (rmin / rmax) - 1e-9,
            "seed {seed}: ρ = {rho} below the Theorem 5 floor {}",
            rmin / rmax
        );
    }
}

#[test]
fn theorem6_greedy_reduction_is_within_the_bound_of_optimal() {
    let bound = (std::f64::consts::E - 1.0) / (2.0 * std::f64::consts::E);
    for seed in 0..6u64 {
        let problem = tiny_problem(200 + seed);
        let allocation = IddeUGame::default().run(&problem).field.into_allocation();
        let greedy = idde::core::GreedyDelivery::default().run(&problem, &allocation);
        let (_, optimal_total) =
            ExhaustiveSolver::default().best_placement(&problem, &allocation).expect("tiny space");
        let phi = greedy.initial_total_latency.value();
        let greedy_reduction = greedy.latency_reduction().value();
        let optimal_reduction = phi - optimal_total;
        assert!(optimal_reduction >= greedy_reduction - 1e-9, "optimal cannot lose to greedy");
        assert!(
            greedy_reduction + 1e-9 >= bound * optimal_reduction,
            "seed {seed}: greedy ΔL {greedy_reduction} < (e−1)/2e × optimal ΔL {optimal_reduction}"
        );
    }
}

#[test]
fn theorem7_latency_never_exceeds_the_cloud_reference() {
    // The coarse reading of Theorem 7: L(σ) ≤ φ always, and the achieved
    // latency respects the bound built from s_max and ΣA_i.
    for seed in 0..4u64 {
        let problem = small_random_problem(300 + seed);
        let allocation = IddeUGame::default().run(&problem).field.into_allocation();
        let greedy = idde::core::GreedyDelivery::default().run(&problem, &allocation);
        assert!(greedy.final_total_latency.value() <= greedy.initial_total_latency.value() + 1e-9);
    }
}

mod certification {
    use super::*;
    use idde::audit::Auditor;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Every converged IDDE-U outcome carries its claimed certificate: no
        /// player holds a unilateral deviation the game's own acceptance
        /// discipline would commit — under either benefit model.
        #[test]
        fn converged_outcomes_pass_nash_certification(seed in 0u64..5_000) {
            let problem = small_random_problem(seed);
            let benefit = if seed % 2 == 0 {
                BenefitModel::PaperEq12
            } else {
                BenefitModel::Congestion
            };
            let game = IddeUGame::new(GameConfig { benefit, ..GameConfig::default() });
            let outcome = game.run(&problem);
            prop_assert!(outcome.converged, "seed {seed}: game hit the pass cap");
            let cert = Auditor::default().certify_equilibrium(&game, &outcome.field, None);
            prop_assert!(cert.is_clean(), "seed {seed}: {cert}");
            prop_assert_eq!(cert.checks, problem.scenario.num_users() as u64);
        }
    }
}
